package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the sharded connection pool: dispatch policies, health-aware
// load shedding, failover, and teardown.

// poolFixture runs `size` independent echo servers and returns a dial
// function plus per-session request counters.
type poolFixture struct {
	counts []atomic.Uint64
	kill   []func() // severs session i's server-side conn
}

func newPoolFixture(t *testing.T, size int) (*poolFixture, func(i int) (Conn, error)) {
	t.Helper()
	f := &poolFixture{counts: make([]atomic.Uint64, size), kill: make([]func(), size)}
	dial := func(i int) (Conn, error) {
		clientEnd, serverEnd := Pipe()
		s := NewServer(ONC{})
		s.Workers = 2
		s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
			f.counts[i].Add(1)
			return echoDispatch(h, d, e)
		})
		done := make(chan struct{})
		go func() { defer close(done); s.ServeConn(serverEnd) }()
		f.kill[i] = func() { serverEnd.Close() }
		t.Cleanup(func() { clientEnd.Close(); <-done })
		return clientEnd, nil
	}
	return f, dial
}

func poolDouble(t *testing.T, p *ClientPool, v uint32) {
	t.Helper()
	d, err := p.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(v) })
	if err != nil {
		t.Fatalf("double(%d): %v", v, err)
	}
	if !d.Ensure(4) {
		t.Fatalf("double(%d): %v", v, d.Err())
	}
	if got := d.U32BE(); got != 2*v {
		t.Errorf("double(%d) = %d", v, got)
	}
	d.Release()
}

func TestPoolRoundRobinSpreads(t *testing.T) {
	const size = 3
	f, dial := newPoolFixture(t, size)
	p, err := NewClientPool(PoolConfig{Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const calls = 30
	for i := 0; i < calls; i++ {
		poolDouble(t, p, uint32(i+1))
	}
	for i := 0; i < size; i++ {
		if got := f.counts[i].Load(); got != calls/size {
			t.Errorf("session %d served %d calls, want %d (round-robin)", i, got, calls/size)
		}
	}
}

func TestPoolHashByOpAffinity(t *testing.T) {
	const size = 4
	f, dial := newPoolFixture(t, size)
	p, err := NewClientPool(PoolConfig{Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1, Policy: HashByOp})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const calls = 20
	for i := 0; i < calls; i++ {
		poolDouble(t, p, uint32(i+1))
	}
	want := int(fnv1a("double") % size)
	for i := 0; i < size; i++ {
		expect := uint64(0)
		if i == want {
			expect = calls
		}
		if got := f.counts[i].Load(); got != expect {
			t.Errorf("session %d served %d calls, want %d (hash affinity)", i, got, expect)
		}
	}
}

func TestPoolFailover(t *testing.T) {
	const size = 3
	f, dial := newPoolFixture(t, size)
	m := NewMetrics()
	p, err := NewClientPool(PoolConfig{
		Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1,
		Retry:            &RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1},
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < size; i++ {
		poolDouble(t, p, uint32(i+1)) // warm every session
	}
	f.kill[0]() // session 0's server goes away

	// Every call must still succeed: session 0 fails, its breaker opens,
	// and the pool fails over to 1/2 (and skips 0 once unhealthy).
	for i := 0; i < 30; i++ {
		poolDouble(t, p, uint32(100+i))
	}
	if got := m.SessionFailovers.Load(); got == 0 {
		t.Error("no failovers recorded despite a dead session")
	}
	if h := p.Healthy(); h != size-1 {
		t.Errorf("Healthy() = %d, want %d (session 0's breaker should be open)", h, size-1)
	}
	if f.counts[1].Load()+f.counts[2].Load() < 30 {
		t.Error("surviving sessions did not absorb the load")
	}
}

func TestPoolAllUnhealthyStillTries(t *testing.T) {
	// With every breaker open, the pool must still hand the call to the
	// preferred session (whose half-open probe is the recovery path)
	// rather than failing without trying.
	const size = 2
	f, dial := newPoolFixture(t, size)
	p, err := NewClientPool(PoolConfig{
		Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1,
		BreakerThreshold: 1, BreakerCooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_ = f

	for i := 0; i < size; i++ {
		p.Client(i).Breaker.failure() // force both breakers open
	}
	time.Sleep(5 * time.Millisecond) // past the cooldown: probes admitted
	poolDouble(t, p, 7)
}

func TestPoolConcurrentCalls(t *testing.T) {
	const size = 4
	_, dial := newPoolFixture(t, size)
	p, err := NewClientPool(PoolConfig{Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				poolDouble(t, p, uint32(g*1000+i+1))
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolClose(t *testing.T) {
	_, dial := newPoolFixture(t, 2)
	p, err := NewClientPool(PoolConfig{Size: 2, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1})
	if err != nil {
		t.Fatal(err)
	}
	poolDouble(t, p, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v", err)
	}
}

func TestPoolBatchWrap(t *testing.T) {
	_, dial := newPoolFixture(t, 2)
	p, err := NewClientPool(PoolConfig{
		Size: 2, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1,
		Batch: &BatchConfig{MaxMessages: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, ok := p.Client(i).sess.conn.(*BatchConn); !ok {
			t.Errorf("session %d conn is %T, want *BatchConn", i, p.Client(i).sess.conn)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				poolDouble(t, p, uint32(g*100+i+1))
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := NewClientPool(PoolConfig{Proto: ONC{}}); err == nil {
		t.Error("missing Dial accepted")
	}
	if _, err := NewClientPool(PoolConfig{Dial: func(int) (Conn, error) { a, _ := Pipe(); return a, nil }}); err == nil {
		t.Error("missing Proto accepted")
	}
}
