//go:build race

package rt

// raceEnabled reports whether this test binary runs under the race
// detector, whose instrumentation changes per-call allocation counts.
const raceEnabled = true
