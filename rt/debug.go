// Runtime debug surface: live introspection over HTTP and as text.
//
// Metrics, the span ring, pool health, and admission load each have
// programmatic accessors; Debug ties them into one consistent snapshot
// an operator can actually look at — an http.Handler for a running
// process (flick-bench -debug-addr) and a text Dump for tests and
// terminals. Everything is read-only and safe to hit while the runtime
// is under full load: each request takes one snapshot and renders it,
// so the costs are the usual monitoring costs, paid by the scraper.
package rt

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// DebugConfig names the runtime pieces a Debug surface exposes. Every
// field is optional; absent pieces render as absent.
type DebugConfig struct {
	// Metrics is the counter registry to snapshot.
	Metrics *Metrics
	// Tracer supplies recent sampled spans and the Chrome trace export.
	Tracer *Tracer
	// Pool supplies per-session health (breaker state, in-flight,
	// poison errors).
	Pool *ClientPool
	// Admission supplies the live load and high-water mark.
	Admission *Admission
}

// Debug serves the runtime debug surface. Routes (relative to the mount
// point):
//
//	/            human-readable text dump (Dump)
//	/metrics     text exposition (Snapshot.WriteTo)
//	/metrics.json  full Snapshot as JSON
//	/delta       text exposition of the delta since the previous /delta
//	             request (Snapshot.Sub) — per-interval rates for scrapers
//	/trace       span ring as Chrome trace_event JSON (load in
//	             about://tracing or Perfetto)
//
// A Debug is safe for concurrent use; Publish may swap the exposed
// runtime pieces at any time (flick-bench republishes per experiment).
type Debug struct {
	mu   sync.Mutex
	cfg  DebugConfig
	last *Snapshot // previous /delta snapshot
}

// NewDebug builds a debug surface over the given runtime pieces.
func NewDebug(cfg DebugConfig) *Debug { return &Debug{cfg: cfg} }

// Publish swaps the runtime pieces the surface exposes.
func (dbg *Debug) Publish(cfg DebugConfig) {
	dbg.mu.Lock()
	dbg.cfg = cfg
	dbg.last = nil
	dbg.mu.Unlock()
}

func (dbg *Debug) config() DebugConfig {
	dbg.mu.Lock()
	defer dbg.mu.Unlock()
	return dbg.cfg
}

// ServeHTTP implements http.Handler.
func (dbg *Debug) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cfg := dbg.config()
	switch path := strings.TrimSuffix(r.URL.Path, "/"); {
	case strings.HasSuffix(path, "/metrics.json"):
		if cfg.Metrics == nil {
			http.Error(w, "no metrics attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		out, err := cfg.Metrics.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(out)
	case strings.HasSuffix(path, "/metrics"):
		if cfg.Metrics == nil {
			http.Error(w, "no metrics attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cfg.Metrics.Snapshot().WriteTo(w)
	case strings.HasSuffix(path, "/delta"):
		if cfg.Metrics == nil {
			http.Error(w, "no metrics attached", http.StatusNotFound)
			return
		}
		snap := cfg.Metrics.Snapshot()
		dbg.mu.Lock()
		prev := dbg.last
		dbg.last = &snap
		dbg.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if prev == nil {
			// First scrape: the interval is process-lifetime.
			snap.WriteTo(w)
			return
		}
		snap.Sub(*prev).WriteTo(w)
	case strings.HasSuffix(path, "/trace"):
		if cfg.Tracer == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		cfg.Tracer.WriteChromeTrace(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, dbg.Dump())
	}
}

// dumpSpans is how many recent spans the text dump shows.
const dumpSpans = 16

// Dump renders the whole surface as one consistent human-readable text
// snapshot: key counters with per-op percentiles, per-session pool
// health, admission watermark, the batch flush-reason breakdown, and
// the most recent sampled spans.
func (dbg *Debug) Dump() string {
	cfg := dbg.config()
	var b strings.Builder

	if m := cfg.Metrics; m != nil {
		s := m.Snapshot()
		fmt.Fprintf(&b, "== metrics ==\n")
		fmt.Fprintf(&b, "conns=%d conn_errors=%d bad_headers=%d bad_xids=%d stale_replies=%d\n",
			s.Conns, s.ConnErrors, s.BadHeaders, s.BadXIDs, s.StaleReplies)
		fmt.Fprintf(&b, "retries=%d reconnects=%d breaker_open=%d breaker_rejects=%d failovers=%d\n",
			s.Retries, s.Reconnects, s.BreakerOpen, s.BreakerRejects, s.SessionFailovers)
		fmt.Fprintf(&b, "in_flight=%d queue_depth=%d admission_rejects=%d dropped_dupes=%d\n",
			s.InFlight, s.QueueDepth, s.AdmissionRejects, s.DroppedDupes)
		fmt.Fprintf(&b, "hedged=%d hedge_wins=%d cancels_sent=%d goaways=%d\n",
			s.HedgedCalls, s.HedgeWins, s.CancelsSent, s.GoAways)
		fmt.Fprintf(&b, "expired_rejects=%d canceled_calls=%d drain_rejects=%d\n",
			s.ExpiredRejects, s.CanceledCalls, s.DrainRejects)
		for _, op := range s.Ops {
			fmt.Fprintf(&b, "op %-16s calls=%-8d errors=%-6d p50=%-10s p90=%-10s p99=%-10s max=%s\n",
				op.Op, op.Calls, op.Errors,
				time.Duration(op.P50Ns), time.Duration(op.P90Ns),
				time.Duration(op.P99Ns), time.Duration(op.MaxNs))
		}
		fmt.Fprintf(&b, "== batch flushes ==\n")
		fmt.Fprintf(&b, "frames=%d batched_calls=%d size=%d idle=%d deadline=%d close=%d\n",
			s.BatchFrames, s.BatchedCalls,
			s.BatchFlushSize, s.BatchFlushIdle, s.BatchFlushDeadline, s.BatchFlushClose)
	}

	if p := cfg.Pool; p != nil {
		fmt.Fprintf(&b, "== pool sessions ==\n")
		for _, sh := range p.Health() {
			state := "healthy"
			if !sh.Healthy {
				state = "unhealthy"
			}
			fmt.Fprintf(&b, "session %-3d %-9s breaker=%-9s in_flight=%d", sh.Index, state, sh.Breaker, sh.InFlight)
			if sh.Err != "" {
				fmt.Fprintf(&b, " err=%q", sh.Err)
			}
			fmt.Fprintln(&b)
		}
	}

	if a := cfg.Admission; a != nil {
		fmt.Fprintf(&b, "== admission ==\n")
		fmt.Fprintf(&b, "load=%d watermark=%d max=%d\n", a.Load(), a.Watermark(), a.MaxLoad)
	}

	if t := cfg.Tracer; t != nil {
		spans := t.Spans()
		fmt.Fprintf(&b, "== spans (recorded=%d dropped=%d, newest %d shown) ==\n",
			t.Recorded(), t.Dropped(), min(dumpSpans, len(spans)))
		// Newest last, so the tail of the dump is the most recent past.
		if len(spans) > dumpSpans {
			spans = spans[len(spans)-dumpSpans:]
		}
		for _, sp := range spans {
			fmt.Fprintf(&b, "%s %s trace=%s span=%016x", sp.Kind, spanOpLabel(sp), sp.Trace, sp.ID)
			if sp.Parent != 0 {
				fmt.Fprintf(&b, " parent=%016x", sp.Parent)
			}
			fmt.Fprintf(&b, " dur=%s", sp.Dur.Round(time.Microsecond))
			if sp.Err != "" {
				fmt.Fprintf(&b, " err=%q", sp.Err)
			}
			for _, ev := range sp.Events {
				fmt.Fprintf(&b, " [%s]", ev.Cause)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

func spanOpLabel(sp *Span) string {
	if sp.Op != "" {
		return sp.Op
	}
	return "-"
}

// SpansByTrace groups a span list into trees keyed by trace ID, each
// sorted parents-before-children (roots first), for assertions and
// reports that reconstruct call trees.
func SpansByTrace(spans []*Span) map[TraceID][]*Span {
	byTrace := make(map[TraceID][]*Span)
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	for _, group := range byTrace {
		sort.SliceStable(group, func(i, j int) bool {
			ri, rj := group[i].Parent == 0, group[j].Parent == 0
			if ri != rj {
				return ri
			}
			return group[i].Start.Before(group[j].Start)
		})
	}
	return byTrace
}
