package rt

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBadXID reports a reply whose transaction id does not match the
// outstanding call. Because Call issues one request at a time over the
// connection, a mismatched reply means the stream is desynchronized
// (a stale reply, a broken peer, or frame corruption): subsequent
// calls on this connection may misparse replies. Callers should treat
// the connection as poisoned and reconnect; the BadXIDs counter in an
// attached Metrics makes the condition visible to operators.
var ErrBadXID = errors.New("rt: reply xid mismatch (connection desynchronized)")

// Client issues RPCs over one connection. Generated client stubs wrap
// Call; the marshal buffer is reused across invocations (a Flick
// optimization: stubs keep their buffers between calls).
type Client struct {
	conn  Conn
	proto Protocol

	// Prog and Vers identify the ONC program; ObjectKey the GIOP target.
	Prog      uint32
	Vers      uint32
	ObjectKey []byte

	// Metrics, when non-nil, collects per-operation call/error counts,
	// latency histograms, byte totals, and encoder/decoder space-check
	// counters. Hooks, when non-nil, receives one TraceEvent per call.
	// Both must be set before the first Call and not changed after;
	// nil (the default) costs one pointer test per call.
	Metrics *Metrics
	Hooks   TraceHook

	mu  sync.Mutex
	enc Encoder
	dec Decoder
	xid uint32
}

// NewClient wraps a connection with a message protocol.
func NewClient(conn Conn, proto Protocol) *Client {
	return &Client{conn: conn, proto: proto, ObjectKey: []byte("flick")}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one invocation: marshal writes the request payload; the
// returned decoder is positioned at the reply payload. Oneway calls
// return (nil, nil) immediately after sending.
func (c *Client) Call(proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics, hooks := c.Metrics, c.Hooks
	if metrics == nil && hooks == nil {
		// Fast path: observability disabled costs exactly the two nil
		// tests above (no timestamps, no allocation).
		return c.call(proc, opName, oneway, marshal, nil)
	}

	var ev *TraceEvent
	if hooks != nil {
		ev = &TraceEvent{Kind: TraceClientCall, Op: opName, Proc: proc, OneWay: oneway}
	}
	if metrics != nil {
		// Space-check counting is off by default so the disabled
		// path's checked puts stay store-free; turn it on now that
		// someone reads the counters.
		c.enc.EnableStats(true)
		c.dec.EnableStats(true)
	}
	begin := time.Now()
	d, err := c.call(proc, opName, oneway, marshal, ev)

	if metrics != nil {
		op := metrics.Op(opName)
		op.Calls.Add(1)
		op.ReqBytes.Add(uint64(c.enc.Len()))
		if d != nil {
			op.RepBytes.Add(uint64(d.Size()))
		}
		if err != nil {
			op.Errors.Add(1)
			if errors.Is(err, ErrBadXID) {
				metrics.BadXIDs.Add(1)
			}
		}
		if oneway {
			metrics.Oneways.Add(1)
		}
		op.Latency.Observe(time.Since(begin))
		metrics.addEnc(c.enc.TakeStats())
		metrics.addDec(c.dec.TakeStats())
	}
	if hooks != nil {
		ev.Begin = begin
		ev.End = time.Now()
		ev.XID = c.xid
		ev.ReqBytes = c.enc.Len()
		if d != nil {
			ev.RepBytes = d.Size()
		}
		ev.Err = err
		if hooks.WantWire() {
			ev.ReqWire = append([]byte(nil), c.enc.Bytes()...)
			if d != nil {
				ev.RepWire = append([]byte(nil), c.dec.buf...)
			}
		}
		hooks.Trace(ev)
	}
	return d, err
}

// call is the uninstrumented invocation body. ev, when non-nil,
// receives the phase timestamp taken right after the request is handed
// to the transport.
func (c *Client) call(proc uint32, opName string, oneway bool, marshal func(*Encoder), ev *TraceEvent) (*Decoder, error) {
	c.xid++
	h := ReqHeader{
		XID:       c.xid,
		Prog:      c.Prog,
		Vers:      c.Vers,
		Proc:      proc,
		OpName:    opName,
		ObjectKey: c.ObjectKey,
		OneWay:    oneway,
	}
	c.enc.Reset()
	c.proto.WriteRequest(&c.enc, &h)
	marshal(&c.enc)
	if err := c.conn.Send(c.enc.Bytes()); err != nil {
		return nil, fmt.Errorf("rt: send: %w", err)
	}
	if ev != nil {
		ev.Sent = time.Now()
	}
	if oneway {
		return nil, nil
	}
	msg, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rt: recv: %w", err)
	}
	c.dec.Reset(msg)
	rh, err := c.proto.ReadReply(&c.dec)
	if err != nil {
		return nil, err
	}
	if rh.XID != h.XID {
		return nil, fmt.Errorf("%w: reply xid %d for call %d", ErrBadXID, rh.XID, h.XID)
	}
	if rh.Status != ReplyOK {
		return nil, ErrSystem
	}
	return &c.dec, nil
}
