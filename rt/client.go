package rt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadXID reports a reply whose transaction id matches no call this
// client has in flight. Calls are multiplexed over the connection and
// replies are matched to callers by XID, so out-of-order replies are
// normal; a reply for an XID that was never issued (and does not belong
// to a timed-out call, which is dropped silently and counted in
// StaleReplies) means the stream is desynchronized — a broken peer or
// frame corruption — and subsequent replies may misparse. The client
// poisons itself: every pending call and every later Call returns this
// error, and callers should reconnect. The BadXIDs counter in an
// attached Metrics makes the condition visible to operators.
var ErrBadXID = errors.New("rt: reply xid matches no pending call (connection desynchronized)")

// ErrTimeout reports a call that exceeded the client's per-call
// deadline. The call's reply slot is retired: if the reply arrives
// later it is dropped (and counted in StaleReplies) without disturbing
// other in-flight calls.
var ErrTimeout = errors.New("rt: call deadline exceeded")

// Client issues RPCs over one connection. Calls are multiplexed: any
// number of goroutines may Call concurrently, each call is tagged with
// a fresh XID, and a dedicated reply-reader goroutine matches replies
// to callers by XID, so replies may complete out of order (a pipelined
// server is free to answer cheap requests before expensive ones).
//
// Marshal buffers follow the pooled ownership contract (see pool.go):
// each call marshals into a pooled Encoder released on send, and each
// reply arrives in a pooled Decoder that the caller — in practice the
// generated client stub — releases with Decoder.Release after
// unmarshaling.
type Client struct {
	conn  Conn
	proto Protocol

	// Prog and Vers identify the ONC program; ObjectKey the GIOP target.
	Prog      uint32
	Vers      uint32
	ObjectKey []byte

	// Metrics, when non-nil, collects per-operation call/error counts,
	// latency histograms, byte totals, encoder/decoder space-check
	// counters, and the InFlight gauge. Hooks, when non-nil, receives
	// one TraceEvent per call. Both must be set before the first Call
	// and not changed after; nil (the default) costs one pointer test
	// per call.
	Metrics *Metrics
	Hooks   TraceHook

	// Timeout, when positive, bounds each call's wait for its reply.
	// A call that times out returns ErrTimeout; its late reply, if it
	// ever arrives, is dropped without poisoning the connection. Set
	// before the first Call.
	Timeout time.Duration

	xid    atomic.Uint32
	closed atomic.Bool

	readerUp   atomic.Bool
	readerOnce sync.Once

	// mu guards the in-flight table, the stale set, and failed.
	mu      sync.Mutex
	pending map[uint32]*call
	stale   map[uint32]struct{}
	// failed, once set, poisons the client: every pending call was
	// drained with it and every subsequent Call returns it.
	failed error
}

// NewClient wraps a connection with a message protocol.
func NewClient(conn Conn, proto Protocol) *Client {
	return &Client{
		conn:      conn,
		proto:     proto,
		ObjectKey: []byte("flick"),
		pending:   make(map[uint32]*call),
		stale:     make(map[uint32]struct{}),
	}
}

// Close releases the connection. Calls still in flight — and any Call
// issued afterwards — return ErrClosed deterministically rather than a
// raw transport error. Close is idempotent.
func (c *Client) Close() error {
	c.closed.Store(true)
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// Call performs one invocation: marshal writes the request payload into
// a pooled encoder; the returned decoder is positioned at the reply
// payload and owned by the caller, who must release it with
// Decoder.Release after unmarshaling. Oneway calls return (nil, nil)
// as soon as the transport accepts the request. Call is safe for
// concurrent use; calls proceed independently and may complete out of
// order.
func (c *Client) Call(proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	metrics, hooks := c.Metrics, c.Hooks
	if metrics == nil && hooks == nil {
		// Fast path: observability disabled costs exactly the two nil
		// tests above (no timestamps, no per-call allocation beyond the
		// transport's own).
		return c.call(proc, opName, oneway, marshal, nil, nil)
	}

	var ev *TraceEvent
	if hooks != nil {
		ev = &TraceEvent{Kind: TraceClientCall, Op: opName, Proc: proc, OneWay: oneway}
	}
	begin := time.Now()
	d, err := c.call(proc, opName, oneway, marshal, ev, metrics)

	if metrics != nil {
		op := metrics.Op(opName)
		op.Calls.Add(1)
		if d != nil {
			op.RepBytes.Add(uint64(d.Size()))
		}
		if err != nil {
			op.Errors.Add(1)
		}
		if oneway {
			metrics.Oneways.Add(1)
		}
		op.Latency.Observe(time.Since(begin))
	}
	if hooks != nil {
		ev.Begin = begin
		ev.End = time.Now()
		if d != nil {
			ev.RepBytes = d.Size()
			if hooks.WantWire() {
				ev.RepWire = append([]byte(nil), d.buf...)
			}
		}
		ev.Err = err
		hooks.Trace(ev)
	}
	return d, err
}

// call is the invocation body. ev, when non-nil, receives the request
// byte count, the XID, the post-transmit timestamp, and (behind
// WantWire) the raw request. metrics, when non-nil, receives the
// request byte total and the drained encoder/decoder counters.
func (c *Client) call(proc uint32, opName string, oneway bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics) (*Decoder, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	xid := c.xid.Add(1)
	h := ReqHeader{
		XID:       xid,
		Prog:      c.Prog,
		Vers:      c.Vers,
		Proc:      proc,
		OpName:    opName,
		ObjectKey: c.ObjectKey,
		OneWay:    oneway,
	}
	enc := getEncoder()
	if metrics != nil {
		enc.EnableStats(true)
	}
	c.proto.WriteRequest(enc, &h)
	marshal(enc)
	if ev != nil {
		ev.XID = xid
		ev.ReqBytes = enc.Len()
	}
	if metrics != nil {
		metrics.Op(opName).ReqBytes.Add(uint64(enc.Len()))
		metrics.addEnc(enc.TakeStats())
	}

	var ca *call
	if !oneway {
		// Register before sending so a reply cannot race past its slot,
		// then make sure someone is reading replies.
		ca = getCall()
		c.mu.Lock()
		if c.failed != nil {
			err := c.failed
			c.mu.Unlock()
			putCall(ca)
			putEncoder(enc)
			return nil, err
		}
		c.pending[xid] = ca
		c.mu.Unlock()
		if metrics != nil {
			metrics.InFlight.Add(1)
		}
		if !c.readerUp.Load() {
			c.readerOnce.Do(func() {
				c.readerUp.Store(true)
				go c.readReplies()
			})
		}
	}

	err := c.conn.Send(enc.Bytes())
	if ev != nil {
		ev.Sent = time.Now()
		if c.Hooks.WantWire() {
			ev.ReqWire = append([]byte(nil), enc.Bytes()...)
		}
	}
	putEncoder(enc)
	if err != nil {
		if !oneway {
			if !c.forget(xid) {
				// The reader (or a drain) delivered concurrently:
				// consume the signal so the pooled call is clean.
				<-ca.done
				if ca.dec != nil {
					putDecoder(ca.dec)
				}
			}
			putCall(ca)
			if metrics != nil {
				metrics.InFlight.Add(-1)
			}
		}
		if c.closed.Load() {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("rt: send: %w", err)
	}
	if oneway {
		return nil, nil
	}

	// Wait for the reader to deliver the matched reply (or the drain
	// error), bounded by the per-call deadline when one is set.
	if c.Timeout > 0 {
		timer := time.NewTimer(c.Timeout)
		select {
		case <-ca.done:
			timer.Stop()
		case <-timer.C:
			if c.forget(xid) {
				// The reply had not arrived: retire the slot. A late
				// reply finds the XID in the stale set and is dropped.
				putCall(ca)
				if metrics != nil {
					metrics.InFlight.Add(-1)
				}
				return nil, ErrTimeout
			}
			// Delivery raced the deadline; take the reply.
			<-ca.done
		}
	} else {
		<-ca.done
	}
	if metrics != nil {
		metrics.InFlight.Add(-1)
	}
	d, derr := ca.dec, ca.err
	putCall(ca)
	if derr != nil {
		return nil, derr
	}
	if metrics != nil {
		// Drain the header-read checks now; the unmarshal-side checks
		// drain when the stub releases the decoder (d.sink).
		metrics.addDec(d.TakeStats())
	}
	return d, nil
}

// forget removes xid from the in-flight table, marking it stale so a
// late reply is dropped rather than treated as desynchronization. It
// reports whether the call was still pending (false means the reader
// already delivered).
func (c *Client) forget(xid uint32) bool {
	c.mu.Lock()
	_, ok := c.pending[xid]
	if ok {
		delete(c.pending, xid)
		c.stale[xid] = struct{}{}
	}
	c.mu.Unlock()
	return ok
}

// readReplies is the client's dedicated reply reader: it owns the
// receive side of the connection, matches each reply to its in-flight
// call by XID, and hands the positioned decoder over. It exits — after
// draining every pending call with the terminal error — when the
// connection fails, the client closes, or the stream desynchronizes.
func (c *Client) readReplies() {
	metrics := c.Metrics
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			if c.closed.Load() {
				c.fail(ErrClosed)
			} else {
				c.fail(fmt.Errorf("rt: recv: %w", err))
			}
			return
		}
		d := getDecoder()
		if metrics != nil {
			d.EnableStats(true)
			d.sink = metrics
		}
		d.Reset(msg)
		rh, err := c.proto.ReadReply(d)
		if err != nil {
			// The reply header did not parse: nothing identifies the
			// caller and the stream position is suspect. Poison.
			putDecoder(d)
			c.fail(fmt.Errorf("rt: reply header: %w", err))
			return
		}

		c.mu.Lock()
		ca, ok := c.pending[rh.XID]
		if ok {
			delete(c.pending, rh.XID)
			c.mu.Unlock()
			if rh.Status != ReplyOK {
				putDecoder(d)
				ca.err = ErrSystem
			} else {
				// Ownership handoff, not retention: the reader passes
				// the decoder to the pending call slot; the stub that
				// receives it releases it.
				ca.dec = d //lint:allow poolescape
			}
			ca.done <- struct{}{}
			continue
		}
		if _, wasStale := c.stale[rh.XID]; wasStale {
			// A reply for a timed-out call: benign, drop it.
			delete(c.stale, rh.XID)
			c.mu.Unlock()
			putDecoder(d)
			if metrics != nil {
				metrics.StaleReplies.Add(1)
			}
			continue
		}
		c.mu.Unlock()
		// An XID this client never issued (or answered twice): the
		// connection is desynchronized.
		putDecoder(d)
		if metrics != nil {
			metrics.BadXIDs.Add(1)
		}
		c.fail(fmt.Errorf("%w: reply xid %d", ErrBadXID, rh.XID))
		return
	}
}

// fail poisons the client with err (first failure wins) and drains
// every pending call with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	drained := make([]*call, 0, len(c.pending))
	for xid, ca := range c.pending {
		delete(c.pending, xid)
		drained = append(drained, ca)
	}
	err = c.failed
	c.mu.Unlock()
	for _, ca := range drained {
		ca.err = err
		ca.done <- struct{}{}
	}
}
