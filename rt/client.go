package rt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadXID reports a reply whose transaction id matches no call this
// client has in flight. Calls are multiplexed over the connection and
// replies are matched to callers by XID, so out-of-order replies are
// normal; a reply for an XID that was never issued (and is not in the
// retired window of recently completed or timed-out calls, whose late
// and duplicate replies are dropped silently and counted in
// StaleReplies) means the stream is desynchronized — a broken peer or
// frame corruption — and subsequent replies may misparse. The client
// poisons the session: every pending call returns this error; with a
// Redial function configured the next call transparently reconnects,
// otherwise every later Call fails too. The BadXIDs counter in an
// attached Metrics makes the condition visible to operators.
var ErrBadXID = errors.New("rt: reply xid matches no pending call (connection desynchronized)")

// ErrTimeout reports a call attempt that exceeded the client's per-call
// deadline. The call's reply slot is retired: if the reply arrives
// later it is dropped (and counted in StaleReplies) without disturbing
// other in-flight calls.
var ErrTimeout = errors.New("rt: call deadline exceeded")

// ErrExpired reports a call the server shed because its propagated
// deadline (the wire deadline annotation; see CallCtx) had already
// passed before dispatch. The handler provably did not run, but
// retrying is pointless — the end-to-end budget is spent — so the
// error classifies as non-retryable.
var ErrExpired = errors.New("rt: deadline expired before dispatch (server shed the call)")

// retiredWindow is the number of recently completed or abandoned XIDs a
// session remembers so that late or duplicated replies (timed-out
// calls, retransmitting links) are recognized and dropped instead of
// being mistaken for desynchronization.
const retiredWindow = 1024

// retiredRing is a fixed-size set of recently retired XIDs: a ring for
// FIFO eviction plus a map for O(1) membership. Zero-allocation in
// steady state (the map is pre-sized and insert/delete balance).
type retiredRing struct {
	set  map[uint32]struct{}
	ring [retiredWindow]uint32
	next int
	full bool
}

func (r *retiredRing) add(xid uint32) {
	if r.set == nil {
		r.set = make(map[uint32]struct{}, retiredWindow)
	}
	if r.full {
		delete(r.set, r.ring[r.next])
	}
	r.ring[r.next] = xid
	r.set[xid] = struct{}{}
	r.next++
	if r.next == retiredWindow {
		r.next, r.full = 0, true
	}
}

func (r *retiredRing) has(xid uint32) bool {
	_, ok := r.set[xid]
	return ok
}

// session is one connection's worth of client state: the in-flight
// table, the retired-XID window, and the poison marker. Retrying and
// reconnecting swap in a whole fresh session, so stale replies from a
// dying connection can never touch the new one's calls.
//
// Completion invariant (this is what makes concurrent fail/Close/
// timeout/delivery safe): a call completes exactly once, because every
// completer — the reply reader delivering, fail draining, or the
// issuing goroutine abandoning on timeout or send error — must first
// remove the call from pending under mu, and only the remover touches
// the call slot afterwards.
type session struct {
	conn Conn
	// ownsArena caches ownsArena(conn): reply buffers from a raw
	// transport transfer to the pooled decoder for arena recycling.
	ownsArena bool

	mu      sync.Mutex
	pending map[uint32]*call
	// streams is the open server-push stream table (stream.go), keyed —
	// like pending — by request XID, so one reader demultiplexes calls
	// and streams together.
	streams map[uint32]*ClientStream
	retired retiredRing
	// failed, once set, poisons the session: every pending call was
	// drained with it and every subsequent register on this session
	// returns it.
	failed   error
	readerOn bool
	// draining is set when the server announces lameduck drain (a
	// GOAWAY frame): calls already in flight will still complete, but
	// Healthy reports false so pools migrate new work to other
	// sessions before the server closes the connection.
	draining bool
}

func newSession(conn Conn) *session {
	return &session{conn: conn, ownsArena: ownsArena(conn), pending: make(map[uint32]*call), streams: make(map[uint32]*ClientStream)}
}

// forget removes xid from the in-flight table, retiring it so a late or
// duplicate reply is dropped rather than treated as desynchronization.
// It reports whether the call was still pending (false means another
// completer got there first).
func (s *session) forget(xid uint32) bool {
	s.mu.Lock()
	_, ok := s.pending[xid]
	if ok {
		delete(s.pending, xid)
		s.retired.add(xid)
	}
	s.mu.Unlock()
	return ok
}

// fail poisons the session with err (first failure wins) and drains
// every pending call with it. Safe to call from multiple goroutines
// concurrently (reader on receive error, Close, a redialing caller):
// each pending call is drained by exactly one of them because removal
// from the table is what claims the right to complete it.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	drained := make([]*call, 0, len(s.pending))
	for xid, ca := range s.pending {
		delete(s.pending, xid)
		drained = append(drained, ca)
	}
	var streams []*ClientStream
	for xid, st := range s.streams {
		delete(s.streams, xid)
		streams = append(streams, st)
	}
	err = s.failed
	s.mu.Unlock()
	for _, ca := range drained {
		ca.err = err
		ca.done <- struct{}{}
	}
	for _, st := range streams {
		// A mid-transfer teardown is terminal for the stream: the
		// consumer cannot know how much arrived, so the classified
		// error says "re-issue from the start" (retryable — the
		// delivered prefix is discarded, nothing executed twice).
		st.terminate(retryable(fmt.Errorf("%w: %v", ErrStreamBroken, err)))
	}
}

func (s *session) failedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// markDraining flags the session as draining, reporting whether this
// call was the first to do so.
func (s *session) markDraining() bool {
	s.mu.Lock()
	was := s.draining
	s.draining = true
	s.mu.Unlock()
	return !was
}

func (s *session) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Client issues RPCs over one connection. Calls are multiplexed: any
// number of goroutines may Call concurrently, each call is tagged with
// a fresh XID, and a dedicated reply-reader goroutine matches replies
// to callers by XID, so replies may complete out of order (a pipelined
// server is free to answer cheap requests before expensive ones).
//
// Marshal buffers follow the pooled ownership contract (see pool.go):
// each call marshals into a pooled Encoder released on send, and each
// reply arrives in a pooled Decoder that the caller — in practice the
// generated client stub — releases with Decoder.Release after
// unmarshaling.
//
// Fault tolerance is opt-in: with Retry, Redial, and/or Breaker set
// the client classifies failures (see ErrRetryable/ErrNotRetryable),
// re-attempts idempotent or never-sent calls under the retry policy,
// transparently reconnects poisoned sessions, and sheds load when the
// breaker opens. With all three nil (the default) failure handling is
// exactly the raw single-attempt behaviour.
type Client struct {
	proto Protocol

	// Prog and Vers identify the ONC program; ObjectKey the GIOP target.
	Prog      uint32
	Vers      uint32
	ObjectKey []byte

	// Metrics, when non-nil, collects per-operation call/error counts,
	// latency histograms, byte totals, encoder/decoder space-check
	// counters, fault-tolerance counters (Retries, Reconnects,
	// BreakerOpen, BreakerRejects), and the InFlight gauge. Hooks, when
	// non-nil, receives one TraceEvent per call. Both must be set
	// before the first Call and not changed after; nil (the default)
	// costs one pointer test per call.
	Metrics *Metrics
	Hooks   TraceHook

	// Tracer, when non-nil, head-samples calls at its SampleRate and
	// records call/attempt spans (span.go); sampled calls carry the
	// trace annotation on the wire so the server's dispatch span joins
	// the same trace. With SampleRate 0 only failed calls are recorded
	// (always-sample-on-error) and nothing is propagated. Must be set
	// before the first Call; nil (the default) costs one pointer test
	// per call and the unsampled path does not allocate.
	Tracer *Tracer

	// Shard labels this client's spans and connection-error trace
	// events with its pool session index (set by ClientPool; 0 for
	// direct clients). Set before the first Call.
	Shard int

	// Timeout, when positive, bounds each call attempt's wait for its
	// reply. An attempt that times out returns ErrTimeout (retried
	// under the Retry policy for idempotent operations); its late
	// reply, if it ever arrives, is dropped without poisoning the
	// connection. Set before the first Call.
	Timeout time.Duration

	// Retry, when non-nil, re-attempts failed calls that are safe to
	// retry: idempotent operations, and calls whose request provably
	// never reached the transport. Set before the first Call.
	Retry *RetryPolicy

	// Redial, when non-nil, reconnects a poisoned client: after a
	// receive failure, desynchronization, or injected reset drains the
	// session, the next call (or retry attempt) dials a fresh
	// connection and carries on. In-flight calls on the dead session
	// fail with the session's terminal error and are retried under the
	// Retry policy if eligible. Set before the first Call.
	Redial func() (Conn, error)

	// Breaker, when non-nil, sheds calls with ErrBreakerOpen after
	// consecutive transport failures (see Breaker). Set before the
	// first Call.
	Breaker *Breaker

	xid    atomic.Uint32
	closed atomic.Bool

	// sessMu guards the current-session pointer and serializes
	// redials (one goroutine dials; the rest wait and share the
	// result).
	sessMu sync.Mutex
	sess   *session
}

// NewClient wraps a connection with a message protocol.
func NewClient(conn Conn, proto Protocol) *Client {
	return &Client{
		proto:     proto,
		ObjectKey: []byte("flick"),
		sess:      newSession(conn),
	}
}

// Close releases the connection. Calls still in flight — and any Call
// issued afterwards — return ErrClosed deterministically rather than a
// raw transport error. Close is idempotent.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.sessMu.Lock()
	s := c.sess
	c.sessMu.Unlock()
	err := s.conn.Close()
	s.fail(ErrClosed)
	return err
}

// Healthy reports whether the client can plausibly complete a call
// right now: it is open, its breaker (if any) is not shedding, its
// session's server is not draining, and the session is either
// unpoisoned or redialable. ClientPool uses it to steer calls toward
// healthy sessions; a false answer is advisory (a half-open breaker
// may still admit a probe, a racing failure may still poison a healthy
// session). A draining session reports unhealthy so pools migrate
// traffic away before the server closes the socket; once it does, a
// redialable client turns healthy again and reconnects — to the
// restarted server — on its next call.
func (c *Client) Healthy() bool {
	if c.closed.Load() {
		return false
	}
	if b := c.Breaker; b != nil && !b.Ready() {
		return false
	}
	c.sessMu.Lock()
	s := c.sess
	c.sessMu.Unlock()
	s.mu.Lock()
	draining, ferr := s.draining, s.failed
	s.mu.Unlock()
	if draining && ferr == nil {
		// GOAWAY received and the socket is still up: in-flight work
		// completes, but new work belongs elsewhere.
		return false
	}
	if c.Redial == nil && ferr != nil {
		return false
	}
	return true
}

// PendingCalls returns the number of calls currently awaiting replies
// on the client's session (the in-flight table size), for the debug
// surface.
func (c *Client) PendingCalls() int {
	c.sessMu.Lock()
	s := c.sess
	c.sessMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// SessionErr returns the current session's poison error, or nil while
// the session is healthy. With Redial configured the error clears on
// the next call (which swaps in a fresh session).
func (c *Client) SessionErr() error {
	c.sessMu.Lock()
	s := c.sess
	c.sessMu.Unlock()
	return s.failedErr()
}

// session returns the current healthy session, transparently dialing a
// replacement when the current one is poisoned and a Redial function is
// configured. Only one goroutine dials; concurrent callers wait on
// sessMu and share the fresh session.
func (c *Client) session(metrics *Metrics, ct *callTrace) (*session, error) {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	s := c.sess
	ferr := s.failedErr()
	if ferr == nil {
		return s, nil
	}
	if c.Redial == nil {
		return nil, ferr
	}
	conn, err := c.Redial()
	if err != nil {
		return nil, fmt.Errorf("rt: redial: %w", err)
	}
	if c.closed.Load() {
		// Close raced the dial: don't resurrect a closed client.
		conn.Close()
		return nil, ErrClosed
	}
	s.conn.Close()
	ns := newSession(conn)
	c.sess = ns
	if metrics != nil {
		metrics.Reconnects.Add(1)
	}
	if ct != nil {
		ct.event("redial", fmt.Sprintf("reconnected after: %v", ferr))
	}
	return ns, nil
}

// Call performs one invocation: marshal writes the request payload into
// a pooled encoder; the returned decoder is positioned at the reply
// payload and owned by the caller, who must release it with
// Decoder.Release after unmarshaling. Oneway calls return (nil, nil)
// as soon as the transport accepts the request. Call is safe for
// concurrent use; calls proceed independently and may complete out of
// order. Call treats the operation as non-idempotent; generated stubs
// use CallIdem and pass the IDL's //flick:idempotent annotation.
func (c *Client) Call(proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	return c.CallIdemCtx(nil, proc, opName, oneway, false, marshal)
}

// CallCtx is Call with a caller context, which participates in the
// call three ways. Trace continuation: when ctx carries a sampled
// TraceContext (a server handler forwarding via (*ReqHeader).Context,
// or ContextWithTrace), the call joins that trace as a child span
// instead of making a fresh sampling decision. Deadline propagation:
// a ctx deadline bounds the wait for the reply and travels on the wire
// as a deadline annotation, so the server inherits the remaining
// budget and sheds expired work before dispatch (ErrExpired).
// Cancellation: ctx.Done() aborts the call — before send, or during
// the wait, in which case a best-effort cancel frame releases the
// server-side work — classified as non-retryable context.Canceled /
// context.DeadlineExceeded.
func (c *Client) CallCtx(ctx context.Context, proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	return c.CallIdemCtx(ctx, proc, opName, oneway, false, marshal)
}

// CallIdem is Call with an explicit idempotency flag, which gates
// retries: with a Retry policy attached, a failed attempt is re-sent
// only when the operation is idempotent or the request provably never
// reached the transport — otherwise the call fails fast with an error
// matching ErrNotRetryable, because retrying might execute the
// operation twice.
func (c *Client) CallIdem(proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder)) (*Decoder, error) {
	return c.CallIdemCtx(nil, proc, opName, oneway, idempotent, marshal)
}

// CallIdemCtx is CallIdem with a caller context for trace continuation
// (see CallCtx). A nil ctx is allowed and means "no propagated trace".
func (c *Client) CallIdemCtx(ctx context.Context, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder)) (*Decoder, error) {
	metrics, hooks, tracer := c.Metrics, c.Hooks, c.Tracer
	if metrics == nil && hooks == nil && tracer == nil {
		// Fast path: observability disabled costs exactly the three nil
		// tests above (no timestamps, no per-call allocation beyond the
		// transport's own).
		return c.invoke(ctx, proc, opName, oneway, idempotent, marshal, nil, nil, nil)
	}

	var ev *TraceEvent
	if hooks != nil {
		ev = &TraceEvent{Kind: TraceClientCall, Op: opName, Proc: proc, OneWay: oneway}
	}
	var ct *callTrace
	if tracer != nil {
		// nil when the head declines to sample: the call proceeds with
		// no tracing state and no wire annotation, allocation-free.
		ct = startCallTrace(tracer, ctx, SpanClientCall, opName, c.Shard)
	}
	begin := time.Now()
	d, err := c.invoke(ctx, proc, opName, oneway, idempotent, marshal, ev, metrics, ct)

	if metrics != nil {
		op := metrics.Op(opName)
		op.Calls.Add(1)
		if d != nil {
			op.RepBytes.Add(uint64(d.Size()))
		}
		if err != nil {
			op.Errors.Add(1)
		}
		if oneway {
			metrics.Oneways.Add(1)
		}
		op.Latency.Observe(time.Since(begin))
	}
	if hooks != nil {
		ev.Begin = begin
		ev.End = time.Now()
		if d != nil {
			ev.RepBytes = d.Size()
			if hooks.WantWire() {
				ev.RepWire = append([]byte(nil), d.buf...)
			}
		}
		ev.Err = err
		hooks.Trace(ev)
	}
	if tracer != nil {
		if ct != nil {
			ct.finish(err)
		} else if err != nil {
			// Always-sample-on-error: an unsampled failure is still
			// recorded, as a lone root with a never-propagated trace ID.
			recordErrorSpan(tracer, SpanClientCall, opName, c.Shard, begin, err)
		}
	}
	return d, err
}

// invoke runs the resilience loop around single call attempts. Without
// Retry, Redial, and Breaker it is exactly one raw attempt (errors
// unwrapped, zero added cost). With them it classifies each failure,
// paces re-attempts with the policy's jittered backoff inside the
// optional per-call budget, and keeps the breaker posted.
func (c *Client) invoke(ctx context.Context, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics, ct *callTrace) (*Decoder, error) {
	if c.Retry == nil && c.Redial == nil && c.Breaker == nil {
		d, err, _ := c.callOnce(ctx, proc, opName, oneway, marshal, ev, metrics, ct)
		return d, err
	}

	if b := c.Breaker; b != nil && !b.allow() {
		if metrics != nil {
			metrics.BreakerRejects.Add(1)
		}
		ct.event("breaker-reject", "call shed, breaker open")
		return nil, ErrBreakerOpen
	}

	d, err, sent := c.callOnce(ctx, proc, opName, oneway, marshal, ev, metrics, ct)
	return c.settleAttempts(ctx, d, err, sent, proc, opName, oneway, idempotent, marshal, ev, metrics, ct)
}

// settleAttempts classifies the outcome of an already-made first
// attempt and, under the retry policy, paces and classifies any
// remaining attempts. It is the shared second half of the resilience
// loop: the sync path enters it from invoke immediately after its
// first attempt, and the async path enters it from Promise.Wait when
// the pipelined first attempt resolves — which is what makes promise
// errors classify exactly like sync errors. The retry budget, when
// set, bounds the re-attempt phase (it opens when settling begins, so
// an async caller's think time between issue and Wait is not charged
// against it).
func (c *Client) settleAttempts(ctx context.Context, d *Decoder, err error, sent bool, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics, ct *callTrace) (*Decoder, error) {
	attempts := 1
	if c.Retry != nil {
		attempts = c.Retry.attempts()
	}
	var deadline time.Time
	if c.Retry != nil && c.Retry.Budget > 0 {
		deadline = time.Now().Add(c.Retry.Budget)
	}
	var lastErr error
	for k := 0; ; k++ {
		if k > 0 {
			if metrics != nil {
				metrics.Retries.Add(1)
			}
			if ct != nil {
				ct.event("retry", fmt.Sprintf("attempt %d after: %v", k+1, lastErr))
			}
			sleep := c.Retry.backoff(k - 1)
			if !deadline.IsZero() {
				rem := time.Until(deadline)
				if rem <= 0 {
					break
				}
				if sleep > rem {
					sleep = rem
				}
			}
			if !sleepCtx(ctx, sleep) {
				// The caller gave up mid-backoff: no further attempts.
				return nil, notRetryable(ctx.Err())
			}
			d, err, sent = c.callOnce(ctx, proc, opName, oneway, marshal, ev, metrics, ct)
		}
		if err == nil {
			if c.Breaker != nil {
				c.Breaker.success()
			}
			return d, nil
		}
		if errors.Is(err, ErrSystem) {
			// The server answered (with a fault): the transport works,
			// and retrying would re-execute. Terminal, breaker-healthy.
			if c.Breaker != nil {
				c.Breaker.success()
			}
			return nil, err
		}
		if errors.Is(err, ErrExpired) {
			// The server answered by shedding expired work before
			// dispatch: the transport works (breaker-healthy), but the
			// end-to-end budget is spent, so retrying cannot help.
			if c.Breaker != nil {
				c.Breaker.success()
			}
			ct.event("expired", "server shed the call, propagated deadline passed")
			return nil, notRetryable(err)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The caller abandoned the call (or its deadline passed):
			// terminal by definition, and no evidence about transport
			// health either way, so the breaker is left alone.
			return nil, notRetryable(err)
		}
		if errors.Is(err, ErrOverloaded) {
			// The server answered by shedding the call before dispatch:
			// the transport works (breaker-healthy) and the operation
			// did not execute, so the retry loop re-attempts it under
			// backoff even when non-idempotent.
			if c.Breaker != nil {
				c.Breaker.success()
			}
			ct.event("admission-reject", "server shed the call before dispatch")
			lastErr = err
			if k+1 >= attempts {
				break
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				break
			}
			continue
		}
		if c.closed.Load() {
			return nil, err
		}
		if b := c.Breaker; b != nil {
			if b.failure() {
				if metrics != nil {
					metrics.BreakerOpen.Add(1)
				}
				ct.event("breaker-open", "consecutive failures tripped the breaker")
			}
		}
		if !idempotent && sent {
			// The request may have reached the server; re-sending a
			// non-idempotent operation could execute it twice.
			return nil, notRetryable(err)
		}
		lastErr = err
		if k+1 >= attempts {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
	}
	return nil, retryable(lastErr)
}

// callOnce is one attempt (see callAttempt). When the call is sampled
// (ct non-nil) it wraps the attempt in a SpanAttempt child span whose
// ID is the one propagated in the wire annotation, so the server-side
// dispatch span parents to exactly the attempt that carried it.
func (c *Client) callOnce(ctx context.Context, proc uint32, opName string, oneway bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics, ct *callTrace) (dec *Decoder, err error, sent bool) {
	if ct == nil {
		return c.callAttempt(ctx, proc, opName, oneway, marshal, ev, metrics, nil, 0)
	}
	attemptID := ct.tr.nextID()
	begin := time.Now()
	dec, err, sent = c.callAttempt(ctx, proc, opName, oneway, marshal, ev, metrics, ct, attemptID)
	sp := &Span{
		Trace: ct.tc.TraceID, ID: attemptID, Parent: ct.tc.SpanID,
		Kind: SpanAttempt, Op: opName, XID: ct.lastXID, Sess: ct.shard,
		Start: begin, Dur: time.Since(begin), Sampled: true,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	ct.tr.record(sp)
	return dec, err, sent
}

// callAttempt is one attempt: session acquisition (redialing if
// needed), marshal, register-before-send, transmit, and the bounded
// wait for the matched reply. sent reports whether the request may have
// reached the peer (false only when it provably did not: registration
// failed, or the transport refused the whole message
// deterministically). ev, when non-nil, receives the request byte
// count, the XID, the post-transmit timestamp, and (behind WantWire)
// the raw request. metrics, when non-nil, receives the request byte
// total and the drained encoder/decoder counters. ct, when non-nil,
// marks the attempt sampled: the request is prefixed with the trace
// annotation carrying attemptID.
func (c *Client) callAttempt(ctx context.Context, proc uint32, opName string, oneway bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics, ct *callTrace, attemptID uint64) (dec *Decoder, err error, sent bool) {
	s, ca, xid, err, sent := c.beginAttempt(ctx, proc, opName, oneway, marshal, ev, metrics, ct, attemptID)
	if err != nil || ca == nil {
		// Failed before a reply could be owed, or oneway success.
		return nil, err, sent
	}
	dec, err = c.awaitAttempt(ctx, s, ca, xid, metrics)
	return dec, err, true
}

// beginAttempt is the transmit half of one attempt: session acquisition
// (redialing if needed), marshal, register-before-send, and transmit.
// On success for a two-way call it returns the session and registered
// call slot for awaitAttempt to claim; for a oneway call it returns a
// nil slot (nothing is owed). It is split from awaitAttempt so the
// async path can transmit many requests before collecting any reply —
// the returned slot is exactly what a Promise holds.
func (c *Client) beginAttempt(ctx context.Context, proc uint32, opName string, oneway bool, marshal func(*Encoder), ev *TraceEvent, metrics *Metrics, ct *callTrace, attemptID uint64) (s *session, ca *call, xid uint32, err error, sent bool) {
	if c.closed.Load() {
		return nil, nil, 0, ErrClosed, false
	}
	var ctxDone <-chan struct{}
	var budget time.Duration
	hasBudget := false
	if ctx != nil {
		// Honor ctx before spending any work on the attempt: a canceled
		// or already-expired context provably never reaches the wire.
		ctxDone = ctx.Done()
		select {
		case <-ctxDone:
			return nil, nil, 0, ctx.Err(), false
		default:
		}
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
			hasBudget = true
			if budget <= 0 {
				return nil, nil, 0, context.DeadlineExceeded, false
			}
		}
	}
	s, err = c.session(metrics, ct)
	if err != nil {
		return nil, nil, 0, err, false
	}
	xid = c.xid.Add(1)
	h := ReqHeader{
		XID:       xid,
		Prog:      c.Prog,
		Vers:      c.Vers,
		Proc:      proc,
		OpName:    opName,
		ObjectKey: c.ObjectKey,
		OneWay:    oneway,
	}
	if ct != nil {
		ct.lastXID = xid
	}
	enc := getEncoder()
	if metrics != nil {
		enc.EnableStats(true)
	}
	if hasBudget {
		// The deadline annotation is outermost: the server strips it
		// before the trace annotation and the protocol header. Like the
		// trace prefix its 16 bytes are a multiple of every protocol's
		// MaxAlign, so payload alignment is unchanged; deadline-less
		// calls write nothing and stay byte-identical.
		writeDeadline(enc, budget)
	}
	if ct != nil {
		// The annotation precedes the protocol header; its 32 bytes are
		// a multiple of every protocol's MaxAlign, so payload alignment
		// is unchanged.
		writeTraceContext(enc, TraceContext{TraceID: ct.tc.TraceID, SpanID: attemptID, Sampled: true})
	}
	c.proto.WriteRequest(enc, &h)
	marshal(enc)
	if ev != nil {
		ev.XID = xid
		ev.ReqBytes = enc.Len()
	}
	if metrics != nil {
		metrics.Op(opName).ReqBytes.Add(uint64(enc.Len()))
		metrics.addEnc(enc.TakeStats())
	}

	if !oneway {
		// Register before sending so a reply cannot race past its slot,
		// then make sure someone is reading replies on this session.
		ca = getCall()
		s.mu.Lock()
		if s.failed != nil {
			err := s.failed
			s.mu.Unlock()
			putCall(ca)
			putEncoder(enc)
			return nil, nil, 0, err, false
		}
		s.pending[xid] = ca
		startReader := !s.readerOn
		if startReader {
			s.readerOn = true
		}
		s.mu.Unlock()
		if metrics != nil {
			metrics.InFlight.Add(1)
		}
		if startReader {
			go c.readReplies(s)
		}
	}

	if oneway {
		// Oneway-aware batching: nothing waits on this message, so a
		// coalescing conn may hold it for company instead of cutting a
		// linger short (see BatchConn.SendLazy). Bytes flattens any
		// alias segments — a lazily held message must not reference
		// caller memory.
		if ls, ok := s.conn.(lazySender); ok {
			err = ls.SendLazy(enc.Bytes())
		} else {
			err = sendEncoded(s.conn, enc)
		}
	} else {
		// Vectored when the stub aliased payload segments and the
		// transport can scatter/gather; the plain contiguous send
		// otherwise.
		err = sendEncoded(s.conn, enc)
	}
	if ev != nil {
		ev.Sent = time.Now()
		if c.Hooks.WantWire() {
			ev.ReqWire = append([]byte(nil), enc.Bytes()...)
		}
	}
	putEncoder(enc)
	if err != nil {
		// ErrClosed is a deterministic whole-message refusal: the
		// transport never took the frame, so even a non-idempotent call
		// is safe to re-send on a fresh connection. Any other send
		// error may have left a prefix on the wire.
		sent = !errors.Is(err, ErrClosed)
		if !oneway {
			if !s.forget(xid) {
				// The reader (or a drain) delivered concurrently:
				// consume the signal so the pooled call is clean.
				<-ca.done
				if ca.dec != nil {
					putDecoder(ca.dec)
				}
			}
			putCall(ca)
			if metrics != nil {
				metrics.InFlight.Add(-1)
			}
		}
		if c.closed.Load() {
			return nil, nil, xid, ErrClosed, sent
		}
		return nil, nil, xid, fmt.Errorf("rt: send: %w", err), sent
	}
	if oneway {
		return nil, nil, xid, nil, true
	}
	return s, ca, xid, nil, true
}

// awaitAttempt is the collect half of one attempt: the bounded wait
// for the reply the reader delivers into the registered call slot. It
// must be entered exactly once per successful two-way beginAttempt —
// it consumes the slot. The wait is bounded by the client Timeout and
// the ctx deadline, whichever is sooner, and interrupted immediately
// by ctx cancellation; an abandoned call sends a best-effort cancel
// frame so the server can release the in-flight work.
func (c *Client) awaitAttempt(ctx context.Context, s *session, ca *call, xid uint32, metrics *Metrics) (dec *Decoder, err error) {
	// Wait for the reader to deliver the matched reply (or the drain
	// error), bounded by the per-call deadline when one is set.
	var ctxDone <-chan struct{}
	timeout := c.Timeout
	// abandonErr is what an elapsed timer means: ErrTimeout for the
	// client's own Timeout, context.DeadlineExceeded when the ctx
	// deadline is the tighter bound.
	abandonErr := error(ErrTimeout)
	if ctx != nil {
		ctxDone = ctx.Done()
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); timeout <= 0 || rem < timeout {
				if rem <= 0 {
					rem = 1
				}
				timeout, abandonErr = rem, context.DeadlineExceeded
			}
		}
	}
	if timeout > 0 || ctxDone != nil {
		var timerC <-chan time.Time
		var timer *time.Timer
		if timeout > 0 {
			timer = time.NewTimer(timeout)
			timerC = timer.C
		}
		select {
		case <-ca.done:
			if timer != nil {
				timer.Stop()
			}
		case <-timerC:
			if s.forget(xid) {
				// The reply had not arrived: retire the slot. A late
				// reply finds the XID in the retired window and is
				// dropped.
				return c.abandonAttempt(s, ca, xid, metrics, abandonErr)
			}
			// Delivery raced the deadline; take the reply.
			<-ca.done
		case <-ctxDone:
			if timer != nil {
				timer.Stop()
			}
			if s.forget(xid) {
				return c.abandonAttempt(s, ca, xid, metrics, ctx.Err())
			}
			<-ca.done
		}
	} else {
		<-ca.done
	}
	if metrics != nil {
		metrics.InFlight.Add(-1)
	}
	d, derr := ca.dec, ca.err
	putCall(ca)
	if derr != nil {
		return nil, derr
	}
	if metrics != nil {
		// Drain the header-read checks now; the unmarshal-side checks
		// drain when the stub releases the decoder (d.sink).
		metrics.addDec(d.TakeStats())
	}
	return d, nil
}

// abandonAttempt releases a forgotten call slot and tells the server —
// best-effort — that nobody is waiting anymore, so it can shed the
// work if still queued or cancel the handler's context if running. The
// late reply, if it ever arrives, finds the XID retired and is dropped.
func (c *Client) abandonAttempt(s *session, ca *call, xid uint32, metrics *Metrics, err error) (*Decoder, error) {
	putCall(ca)
	if metrics != nil {
		metrics.InFlight.Add(-1)
		metrics.CancelsSent.Add(1)
	}
	sendStreamCtl(s.conn, frameCallCancel, xid, 0)
	return nil, err
}

// sleepCtx sleeps for d unless ctx is done first, reporting whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// readReplies is a session's dedicated reply reader: it owns the
// receive side of the connection, matches each reply to its in-flight
// call by XID, and hands the positioned decoder over. It exits — after
// draining every pending call with the terminal error — when the
// connection fails, the client closes, or the stream desynchronizes.
// The session it drains is left poisoned; with Redial configured the
// next call swaps in a fresh session (and a fresh reader).
func (c *Client) readReplies(s *session) {
	metrics := c.Metrics
	for {
		msg, err := s.conn.Recv()
		if err != nil {
			if c.closed.Load() {
				s.fail(ErrClosed)
			} else {
				ferr := fmt.Errorf("rt: recv: %w", err)
				s.fail(ferr)
				c.connTornDown(ferr)
			}
			return
		}
		if kind, sxid, arg, payload, ok := SplitStream(msg); ok {
			if kind == frameGoAway {
				// Lameduck drain announcement: in-flight calls still
				// complete, but Healthy turns false so pools migrate
				// new traffic before the server closes the socket.
				if s.markDraining() && metrics != nil {
					metrics.GoAways.Add(1)
				}
				_ = arg // drain-deadline hint; advisory
				continue
			}
			// A stream frame (chunk, end, err): structurally tagged, so
			// it routes around the reply parser entirely (stream.go).
			c.streamFrame(s, kind, sxid, arg, payload, metrics)
			continue
		}
		d := getDecoder()
		if metrics != nil {
			d.EnableStats(true)
			d.sink = metrics
		}
		if s.ownsArena {
			// The raw transport drew msg from the receive arena; hand
			// ownership to the decoder so Release recycles it (or pins
			// it if the stub aliased views out of it).
			d.ResetArena(msg)
		} else {
			d.Reset(msg)
		}
		rh, err := c.proto.ReadReply(d)
		if err != nil {
			// The reply header did not parse: nothing identifies the
			// caller and the stream position is suspect. Poison.
			putDecoder(d)
			ferr := fmt.Errorf("rt: reply header: %w", err)
			s.fail(ferr)
			c.connTornDown(ferr)
			return
		}

		s.mu.Lock()
		ca, ok := s.pending[rh.XID]
		if ok {
			delete(s.pending, rh.XID)
			// Retire delivered XIDs too: a retransmitting link can
			// duplicate a reply, and the duplicate must not be taken
			// for desynchronization.
			s.retired.add(rh.XID)
			s.mu.Unlock()
			switch rh.Status {
			case ReplyOK:
				// Ownership handoff, not retention: the reader passes
				// the decoder to the pending call slot; the stub that
				// receives it releases it.
				ca.dec = d //lint:allow poolescape
			case ReplyOverloaded:
				// Admission control shed the call before dispatch: the
				// server provably did not execute it, so it is safe to
				// retry even when non-idempotent.
				putDecoder(d)
				ca.err = ErrOverloaded
			case ReplyExpired:
				// The propagated deadline passed before dispatch: the
				// handler did not run, and the budget is spent.
				putDecoder(d)
				ca.err = ErrExpired
			default:
				putDecoder(d)
				ca.err = ErrSystem
			}
			ca.done <- struct{}{}
			continue
		}
		if st, sok := s.streams[rh.XID]; sok {
			// A normal reply addressed to a stream: the server refused
			// the request before streaming began (admission shed,
			// malformed arguments, unknown operation). Terminal.
			delete(s.streams, rh.XID)
			s.retired.add(rh.XID)
			s.mu.Unlock()
			putDecoder(d)
			switch rh.Status {
			case ReplyOverloaded:
				st.terminate(ErrOverloaded)
			case ReplyExpired:
				st.terminate(ErrExpired)
			default:
				st.terminate(fmt.Errorf("rt: stream: %w", ErrSystem))
			}
			continue
		}
		if s.retired.has(rh.XID) {
			// A late or duplicated reply for a completed or timed-out
			// call: benign, drop it.
			s.mu.Unlock()
			putDecoder(d)
			if metrics != nil {
				metrics.StaleReplies.Add(1)
			}
			continue
		}
		s.mu.Unlock()
		// An XID this client never issued: the connection is
		// desynchronized.
		putDecoder(d)
		if metrics != nil {
			metrics.BadXIDs.Add(1)
		}
		ferr := fmt.Errorf("%w: reply xid %d", ErrBadXID, rh.XID)
		s.fail(ferr)
		c.connTornDown(ferr)
		return
	}
}

// connTornDown reports a connection teardown that poisoned a session —
// a receive failure, an unparseable reply header, or a desynchronized
// stream, whether noticed during normal operation, poison-drain, or a
// pool failover — through the trace hook as a TraceConnError with the
// pool session index attached. Deliberate Close teardowns are not
// reported (they carry no diagnostic signal).
func (c *Client) connTornDown(err error) {
	if metrics := c.Metrics; metrics != nil {
		metrics.ConnErrors.Add(1)
	}
	hooks := c.Hooks
	if hooks == nil {
		return
	}
	now := time.Now()
	hooks.Trace(&TraceEvent{Kind: TraceConnError, Sess: c.Shard, Begin: now, End: now, Err: err})
}
