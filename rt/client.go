package rt

import (
	"fmt"
	"sync"
)

// Client issues RPCs over one connection. Generated client stubs wrap
// Call; the marshal buffer is reused across invocations (a Flick
// optimization: stubs keep their buffers between calls).
type Client struct {
	conn  Conn
	proto Protocol

	// Prog and Vers identify the ONC program; ObjectKey the GIOP target.
	Prog      uint32
	Vers      uint32
	ObjectKey []byte

	mu  sync.Mutex
	enc Encoder
	dec Decoder
	xid uint32
}

// NewClient wraps a connection with a message protocol.
func NewClient(conn Conn, proto Protocol) *Client {
	return &Client{conn: conn, proto: proto, ObjectKey: []byte("flick")}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one invocation: marshal writes the request payload; the
// returned decoder is positioned at the reply payload. Oneway calls
// return (nil, nil) immediately after sending.
func (c *Client) Call(proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	h := ReqHeader{
		XID:       c.xid,
		Prog:      c.Prog,
		Vers:      c.Vers,
		Proc:      proc,
		OpName:    opName,
		ObjectKey: c.ObjectKey,
		OneWay:    oneway,
	}
	c.enc.Reset()
	c.proto.WriteRequest(&c.enc, &h)
	marshal(&c.enc)
	if err := c.conn.Send(c.enc.Bytes()); err != nil {
		return nil, fmt.Errorf("rt: send: %w", err)
	}
	if oneway {
		return nil, nil
	}
	msg, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rt: recv: %w", err)
	}
	c.dec.Reset(msg)
	rh, err := c.proto.ReadReply(&c.dec)
	if err != nil {
		return nil, err
	}
	if rh.XID != h.XID {
		return nil, fmt.Errorf("%w: reply xid %d for call %d", ErrBadMagic, rh.XID, h.XID)
	}
	if rh.Status != ReplyOK {
		return nil, ErrSystem
	}
	return &c.dec, nil
}
