package rt

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for the async/promise surface: CallAsync transmits at issue
// time, Wait resolves through the shared classification loop, so a
// promise pipelines like the paper's §5 depth experiments and fails
// exactly like a sync call.

// TestPromisePipelined issues a window of async calls before collecting
// any reply: all requests must be in flight together (that is the point
// of the surface) and every promise must resolve to its own reply even
// though the server may answer out of order.
func TestPromisePipelined(t *testing.T) {
	before := ReadPoolStats()
	conn := startEchoServer(t, 4)
	c := newEchoClient(conn)

	const n = 32
	ps := make([]*Promise, n)
	for i := range ps {
		v := uint32(i + 1)
		ps[i] = c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(v) })
	}
	for i, p := range ps {
		d, err := p.Wait()
		if err != nil {
			t.Fatalf("promise %d: %v", i, err)
		}
		if !d.Ensure(4) {
			t.Fatalf("promise %d: %v", i, d.Err())
		}
		if got, want := d.U32BE(), uint32(2*(i+1)); got != want {
			t.Fatalf("promise %d = %d, want %d (reply cross-matched?)", i, got, want)
		}
		d.Release()
	}
	waitPoolBalance(t, before)
}

// TestPromiseSettledOnce pins the single-shot contract: the second Wait
// reports ErrPromiseSettled instead of touching the consumed slot.
func TestPromiseSettledOnce(t *testing.T) {
	conn := startEchoServer(t, 1)
	c := newEchoClient(conn)

	p := c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(21) })
	d, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	d.Release()
	if _, err := p.Wait(); !errors.Is(err, ErrPromiseSettled) {
		t.Fatalf("second Wait = %v, want ErrPromiseSettled", err)
	}
}

// startStallServer serves a protocol whose proc 9 blocks until the test
// ends, so a bounded client deterministically times out with the
// request already on the wire (sent = true).
func startStallServer(t *testing.T) Conn {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	release := make(chan struct{})
	s := NewServer(ONC{})
	s.Workers = 4
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		if h.Proc == 9 {
			h.OpName = "stall"
			<-release
			return nil
		}
		return echoDispatch(h, d, e)
	})
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { close(release); clientEnd.Close(); <-done })
	return clientEnd
}

// TestPromiseClassificationMatchesSync drives the same two failure
// scenarios through a sync call and through CallAsync+Wait and checks
// the errors classify identically under errors.Is — the acceptance
// contract for the async surface.
func TestPromiseClassificationMatchesSync(t *testing.T) {
	policy := func() *RetryPolicy {
		return &RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Seed: 1}
	}

	// Scenario 1: dead transport from the first byte. The send fails
	// deterministically, so even after retries the error is retryable
	// (the request never reached a server).
	deadCall := func(async bool) error {
		clientEnd, serverEnd := Pipe()
		serverEnd.Close()
		t.Cleanup(func() { clientEnd.Close() })
		c := newEchoClient(clientEnd)
		c.Retry = policy()
		if async {
			_, err := c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(1) }).Wait()
			return err
		}
		_, err := c.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) })
		return err
	}

	// Scenario 2: transmitted but never answered, non-idempotent. The
	// attempt times out with the request possibly executing server-side,
	// so the classified error must refuse the retry.
	stallCall := func(async bool) error {
		c := newEchoClient(startStallServer(t))
		c.Timeout = 25 * time.Millisecond
		c.Retry = policy()
		if async {
			_, err := c.CallAsync(9, "stall", false, func(e *Encoder) { e.PutU32BEC(1) }).Wait()
			return err
		}
		_, err := c.CallIdem(9, "stall", false, false, func(e *Encoder) { e.PutU32BEC(1) })
		return err
	}

	for _, tc := range []struct {
		name string
		call func(async bool) error
		is   []error
		not  []error
	}{
		{"dead-transport-idempotent", deadCall, []error{ErrRetryable}, []error{ErrNotRetryable}},
		{"stalled-nonidempotent", stallCall, []error{ErrNotRetryable, ErrTimeout}, []error{ErrRetryable}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			syncErr, asyncErr := tc.call(false), tc.call(true)
			if syncErr == nil || asyncErr == nil {
				t.Fatalf("want failures, got sync=%v async=%v", syncErr, asyncErr)
			}
			for _, sentinel := range tc.is {
				if !errors.Is(syncErr, sentinel) || !errors.Is(asyncErr, sentinel) {
					t.Errorf("errors.Is(%v) disagree: sync=%v (%t) async=%v (%t)",
						sentinel, syncErr, errors.Is(syncErr, sentinel), asyncErr, errors.Is(asyncErr, sentinel))
				}
			}
			for _, sentinel := range tc.not {
				if errors.Is(syncErr, sentinel) || errors.Is(asyncErr, sentinel) {
					t.Errorf("errors.Is(%v) should be false for both: sync=%v async=%v", sentinel, syncErr, asyncErr)
				}
			}
		})
	}
}

// TestPromiseBreakerPreempt pins the issue-time breaker check: an open
// breaker settles the promise before any transmit, and Wait reports
// ErrBreakerOpen exactly like the sync path.
func TestPromiseBreakerPreempt(t *testing.T) {
	conn := startEchoServer(t, 1)
	c := newEchoClient(conn)
	b := &Breaker{Threshold: 1, Cooldown: time.Hour}
	c.Breaker = b
	for i := 0; i < 2; i++ {
		b.failure() // trip it
	}
	p := c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(1) })
	if _, err := p.Wait(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Wait = %v, want ErrBreakerOpen", err)
	}
}

// TestPoolCallAsync spreads async calls across a pool and resolves them
// out of issue order; each promise must still carry its own reply.
func TestPoolCallAsync(t *testing.T) {
	const size = 3
	_, dial := newPoolFixture(t, size)
	p, err := NewClientPool(PoolConfig{Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 30
	ps := make([]*Promise, n)
	for i := range ps {
		v := uint32(i + 1)
		ps[i] = p.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(v) })
	}
	// Resolve back-to-front to prove resolution order is free.
	for i := n - 1; i >= 0; i-- {
		d, err := ps[i].Wait()
		if err != nil {
			t.Fatalf("promise %d: %v", i, err)
		}
		if !d.Ensure(4) {
			t.Fatalf("promise %d: %v", i, d.Err())
		}
		if got, want := d.U32BE(), uint32(2*(i+1)); got != want {
			t.Fatalf("promise %d = %d, want %d", i, got, want)
		}
		d.Release()
	}
}

// TestPromiseConcurrentWaiters resolves promises from goroutines other
// than the issuer — the documented handoff pattern.
func TestPromiseConcurrentWaiters(t *testing.T) {
	conn := startEchoServer(t, 4)
	c := newEchoClient(conn)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		v := uint32(i + 1)
		p := c.CallAsync(1, "double", true, func(e *Encoder) { e.PutU32BEC(v) })
		wg.Add(1)
		go func(i int, p *Promise, want uint32) {
			defer wg.Done()
			d, err := p.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			if !d.Ensure(4) {
				errs[i] = d.Err()
				return
			}
			if got := d.U32BE(); got != want {
				errs[i] = errors.New("wrong reply value")
			}
			d.Release()
		}(i, p, 2*v)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
}
