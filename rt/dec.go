package rt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a message shorter than its contents claim.
var ErrTruncated = errors.New("rt: truncated message")

// ErrBound reports a counted field exceeding its declared bound.
var ErrBound = errors.New("rt: length exceeds declared bound")

// ErrBadConst reports a protocol constant with the wrong value.
var ErrBadConst = errors.New("rt: bad protocol constant")

// ErrBadUnion reports an unknown union discriminator.
var ErrBadUnion = errors.New("rt: unknown union discriminator")

// Decoder reads one message payload. Errors are sticky: after a failed
// Ensure or Len the decoder returns zero values, and Err reports the
// first failure.
type Decoder struct {
	buf []byte
	pos int
	err error
	// lim is Ensure's fast-path limit: len(buf) normally, -1 while
	// counting is enabled. Ensure tests `lim - pos < n`, so with
	// lim == len(buf) it is exactly the availability check, and with
	// lim == -1 it always routes through ensureSlow, where the
	// counters live (the same trick as Encoder.lim: the disabled
	// path stays a single compare, which keeps the per-datum checked
	// reads no more expensive than before counting existed).
	lim int
	// Observability counters (see DecStats). Plain integers: a Decoder
	// is single-reader by contract.
	stats   bool
	nEnsure uint64
	nFail   uint64
	// pooled marks a runtime-owned decoder handed out by the call
	// pipeline; Release returns it to the pool (see pool.go). sink,
	// when non-nil, receives the drained counters at Release time so
	// unmarshal-side checks performed after Call returns still reach
	// the registry that observed the call.
	pooled bool
	sink   *Metrics
	// arena, when non-nil, is the pooled receive buffer backing buf
	// (see arena.go); aliased records that AliasNext handed out a view
	// into it, which pins the arena at Release instead of recycling it.
	arena   []byte
	aliased bool
}

// relim recomputes the fast-path limit after anything that rebinds
// d.buf or changes the counting mode.
func (d *Decoder) relim() {
	if d.stats {
		d.lim = -1 // lim-pos < n for every n >= 0: always take ensureSlow
	} else {
		d.lim = len(d.buf)
	}
}

// EnableStats turns space-check counting on or off (off by default).
// The runtime enables it when a Metrics registry is attached; with
// counting off, Ensure and Fail do not touch the counters.
func (d *Decoder) EnableStats(on bool) {
	d.stats = on
	d.relim()
}

// DecStats reports a decoder's space-check counters: EnsureChecks is
// the number of Ensure calls (the paper's unmarshal-side truncation
// checks — optimized stubs emit one per message segment, naive stubs
// one per datum), Failures the number of recorded decode failures.
type DecStats struct {
	EnsureChecks uint64 `json:"ensure_checks"`
	Failures     uint64 `json:"failures"`
}

// Stats returns the counters accumulated since construction or the
// last TakeStats. Reset does not clear them (they span a decoder's
// whole reuse lifetime).
func (d *Decoder) Stats() DecStats {
	return DecStats{EnsureChecks: d.nEnsure, Failures: d.nFail}
}

// TakeStats returns the accumulated counters and zeroes them (the
// runtime drains per-call deltas into a Metrics registry this way).
func (d *Decoder) TakeStats() DecStats {
	s := d.Stats()
	d.nEnsure, d.nFail = 0, 0
	return s
}

// Size returns the total payload length the decoder was bound to.
func (d *Decoder) Size() int { return len(d.buf) }

// NewDecoder reads from payload.
func NewDecoder(payload []byte) *Decoder {
	return &Decoder{buf: payload, lim: len(payload)}
}

// Reset rebinds the decoder to a new payload. Any arena binding is
// dropped without recycling (the caller kept ownership of the old
// buffer); use ResetArena to transfer buffer ownership to the decoder.
func (d *Decoder) Reset(payload []byte) {
	d.buf = payload
	d.pos = 0
	d.err = nil
	d.arena = nil
	d.aliased = false
	d.relim()
}

// ResetArena rebinds the decoder to a payload drawn from the receive
// arena, transferring ownership: when the decoder is released with no
// alias views outstanding, the buffer re-enters the arena pool; if
// AliasNext handed out views, the buffer is pinned for the garbage
// collector instead (an escaped view must never see recycled bytes).
func (d *Decoder) ResetArena(payload []byte) {
	d.Reset(payload)
	d.arena = payload
}

// AliasNext is Next plus a borrow note: the returned window aliases
// the receive arena, so the decoder pins its buffer at Release if the
// view might still be live. Generated -zerocopy stubs call it for
// prover-approved byte regions; the arenalife analyzer checks that
// such views do not escape their borrow.
func (d *Decoder) AliasNext(n int) []byte {
	if d.arena != nil {
		d.aliased = true
		zcCounters.aliasViews.Add(1)
	}
	return d.Next(n)
}

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

// Pos returns the current read offset.
func (d *Decoder) Pos() int { return d.pos }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Fail records err (if none is recorded yet) and returns the sticky
// error.
func (d *Decoder) Fail(err error) error {
	if d.stats {
		d.nFail++
	}
	if d.err == nil {
		d.err = err
	}
	return d.err
}

// Ensure checks that n more bytes are available: the single check per
// segment in optimized stubs.
func (d *Decoder) Ensure(n int) bool {
	if d.lim-d.pos < n {
		return d.ensureSlow(n)
	}
	return true
}

// ensureSlow is Ensure's out-of-line path: a genuine availability
// failure, or — while counting is enabled — every Ensure call, so the
// counters never touch the inlined fast path. Kept out of line (and
// out of Ensure's inlining budget) so the per-datum checked reads stay
// as cheap as before counting existed.
//
//go:noinline
func (d *Decoder) ensureSlow(n int) bool {
	if d.stats {
		d.nEnsure++
	}
	if len(d.buf)-d.pos < n {
		d.Fail(fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, d.pos, len(d.buf)-d.pos))
		return false
	}
	return true
}

// EnsureDyn checks base + per*count bytes.
func (d *Decoder) EnsureDyn(base, per, count int) bool {
	return d.Ensure(base + per*count)
}

// Next consumes an n-byte window (availability ensured).
func (d *Decoder) Next(n int) []byte {
	w := d.buf[d.pos : d.pos+n]
	d.pos += n
	return w
}

// Align skips to an n-byte boundary.
func (d *Decoder) Align(n int) {
	pad := (n - d.pos%n) % n
	d.pos += pad
	if d.pos > len(d.buf) {
		d.pos = len(d.buf)
		d.Fail(ErrTruncated)
	}
}

// Unchecked reads (availability ensured by a preceding Ensure).

func (d *Decoder) U8() byte {
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *Decoder) U16BE() uint16 { return binary.BigEndian.Uint16(d.Next(2)) }
func (d *Decoder) U16LE() uint16 { return binary.LittleEndian.Uint16(d.Next(2)) }
func (d *Decoder) U32BE() uint32 { return binary.BigEndian.Uint32(d.Next(4)) }
func (d *Decoder) U32LE() uint32 { return binary.LittleEndian.Uint32(d.Next(4)) }
func (d *Decoder) U64BE() uint64 { return binary.BigEndian.Uint64(d.Next(8)) }
func (d *Decoder) U64LE() uint64 { return binary.LittleEndian.Uint64(d.Next(8)) }

// Checked reads: the slow path with one availability test per datum.

func (d *Decoder) U8C() byte {
	if !d.Ensure(1) {
		return 0
	}
	return d.U8()
}

func (d *Decoder) U16BEC() uint16 {
	if !d.Ensure(2) {
		return 0
	}
	return d.U16BE()
}

func (d *Decoder) U16LEC() uint16 {
	if !d.Ensure(2) {
		return 0
	}
	return d.U16LE()
}

func (d *Decoder) U32BEC() uint32 {
	if !d.Ensure(4) {
		return 0
	}
	return d.U32BE()
}

func (d *Decoder) U32LEC() uint32 {
	if !d.Ensure(4) {
		return 0
	}
	return d.U32LE()
}

func (d *Decoder) U64BEC() uint64 {
	if !d.Ensure(8) {
		return 0
	}
	return d.U64BE()
}

func (d *Decoder) U64LEC() uint64 {
	if !d.Ensure(8) {
		return 0
	}
	return d.U64LE()
}

// Len reads a u32 count (availability of the 4 count bytes must already
// be ensured) and validates it against bound (0 means the full u32
// range). nul subtracts the CDR string NUL from the returned count.
func (d *Decoder) Len(order ByteOrder, bound uint32, nul bool) (int, bool) {
	var n uint32
	if order == BE {
		n = d.U32BE()
	} else {
		n = d.U32LE()
	}
	return d.CheckLen(n, bound, nul)
}

// CheckLen validates an already-read count against its bound and the
// remaining payload. nul subtracts the CDR string NUL.
func (d *Decoder) CheckLen(n uint32, bound uint32, nul bool) (int, bool) {
	if nul {
		if n == 0 {
			d.Fail(fmt.Errorf("%w: zero-length NUL-counted string", ErrBadConst))
			return 0, false
		}
		n--
	}
	if bound != 0 && n > bound {
		d.Fail(fmt.Errorf("%w: %d > %d", ErrBound, n, bound))
		return 0, false
	}
	// Guard absurd lengths against the remaining payload so a hostile
	// count cannot force a huge allocation.
	if int64(n) > int64(len(d.buf)-d.pos) {
		d.Fail(fmt.Errorf("%w: count %d exceeds remaining %d bytes",
			ErrTruncated, n, len(d.buf)-d.pos))
		return 0, false
	}
	return int(n), true
}

// CheckConst consumes an already-read value check failure.
func (d *Decoder) CheckConst(got, want uint64) bool {
	if got != want {
		d.Fail(fmt.Errorf("%w: got %#x, want %#x", ErrBadConst, got, want))
		return false
	}
	return true
}

// ByteOrder tags generated call sites.
type ByteOrder int

const (
	BE ByteOrder = iota
	LE
)

// CheckBound panics when a counted value exceeds its declared IDL bound:
// a marshal-side contract violation by the caller, analogous to an
// out-of-range slice index.
func CheckBound(n int, bound uint32) {
	if bound != 0 && n > int(bound) {
		panic(fmt.Sprintf("rt: length %d exceeds declared bound %d", n, bound))
	}
}
