// Call-lifecycle robustness: server-side cancellation and lameduck
// drain.
//
// The client half lives in client.go (deadline annotation emission,
// ctx-aware waits, cancel frames); this file holds the server half:
// the per-connection registry that turns client cancel frames into
// handler context cancellation and pre-dispatch shedding, and
// Server.Drain — the GOAWAY-announced lameduck shutdown that lets a
// fleet restart servers one at a time without losing calls.
package rt

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDraining poisons the stream registry when a drain deadline passes:
// credit-starved StreamSenders unblock with it (wrapped in
// ErrStreamBroken) instead of hanging until their own timeouts.
var ErrDraining = errors.New("rt: server draining")

// connCalls is one served connection's in-flight call registry, shared
// between the decode loop (which applies client cancel frames) and the
// workers (which check for cancellation before dispatch and register
// handler contexts during it). It is the server-side mirror of the
// client's pending table: the canceled window uses the same bounded
// ring the client's retired window uses, so a burst of cancels cannot
// grow state without bound.
type connCalls struct {
	mu       sync.Mutex
	canceled retiredRing
	active   map[uint32]context.CancelFunc
	// killed marks the drain deadline passed: every queued request is
	// shed (ReplyOverloaded — failover-safe, nothing executed) and no
	// new handler context registers.
	killed bool
}

func newConnCalls() *connCalls {
	return &connCalls{active: make(map[uint32]context.CancelFunc)}
}

// cancel marks xid abandoned by its client and cancels the handler
// context if one is registered (the handler is mid-dispatch). It
// reports whether a running handler was released; a cancel for a
// still-queued request is remembered and shed by the worker instead.
func (cc *connCalls) cancel(xid uint32) bool {
	cc.mu.Lock()
	cc.canceled.add(xid)
	fn := cc.active[xid]
	delete(cc.active, xid)
	cc.mu.Unlock()
	if fn != nil {
		fn()
		return true
	}
	return false
}

// register attaches a dispatching handler's cancel function, reporting
// false when the call was already canceled or the connection killed —
// the caller must then cancel the fresh context immediately.
func (cc *connCalls) register(xid uint32, fn context.CancelFunc) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.killed || cc.canceled.has(xid) {
		return false
	}
	cc.active[xid] = fn
	return true
}

// state reports, for a job about to be dispatched, whether its client
// canceled it and whether the drain deadline killed the connection's
// remaining queue.
func (cc *connCalls) state(xid uint32) (canceled, killed bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.canceled.has(xid), cc.killed
}

// finish detaches the handler context registered for xid, releasing
// its deadline timer. The worker calls it after every dispatch; a
// handler that never called (*ReqHeader).Context registered nothing
// and this is a map miss.
func (cc *connCalls) finish(xid uint32) {
	cc.mu.Lock()
	fn := cc.active[xid]
	delete(cc.active, xid)
	cc.mu.Unlock()
	if fn != nil {
		// The handler has returned; canceling now only frees the
		// context's resources.
		fn()
	}
}

// kill sheds everything still queued and cancels every registered
// handler context: the drain deadline passed and the connection is
// about to close.
func (cc *connCalls) kill() {
	cc.mu.Lock()
	cc.killed = true
	fns := make([]context.CancelFunc, 0, len(cc.active))
	for xid, fn := range cc.active {
		delete(cc.active, xid)
		fns = append(fns, fn)
	}
	cc.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// cancelAll marks every live stream ledger canceled and wakes blocked
// senders: a credit-starved StreamSender unblocks with
// ErrStreamCanceled instead of waiting out its own timeout. Used by
// the drain deadline (the consumer is being migrated, not served).
func (cs *connStreams) cancelAll() {
	cs.mu.Lock()
	for _, st := range cs.m {
		st.canceled = true
		st.cond.Broadcast()
	}
	cs.mu.Unlock()
}

// servingConn is the per-connection state Server.Drain coordinates
// with ServeConn: the transport (for the GOAWAY frame and final
// close), the stream and call registries (for straggler cancellation),
// and the in-flight gauge the drain loop watches.
type servingConn struct {
	conn  Conn
	cs    *connStreams
	calls *connCalls
	// inflight counts requests admitted to the worker queue and not
	// yet finished (dispatch done, reply sent or shed).
	inflight atomic.Int64
}

// Draining reports whether Drain has begun. New requests on any
// connection are shed with ReplyOverloaded (failover-safe) once it
// returns true.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs a lameduck shutdown: it announces GOAWAY on every
// served connection (clients mark the session draining, pools migrate
// new traffic to healthy sessions), sheds requests that arrive
// afterwards with ReplyOverloaded (retryable and failover-safe — the
// operation provably did not execute), waits for in-flight calls and
// streams to settle, and then closes the connections. If the work does
// not settle within timeout, stragglers are canceled: queued requests
// are shed, registered handler contexts are canceled, and
// credit-starved StreamSenders are unblocked with ErrStreamCanceled
// instead of hanging until their own timeouts.
//
// Drain returns true when everything settled inside the deadline — a
// loss-free drain: every accepted call was answered, every shed call
// is safely retryable elsewhere. It returns false when stragglers had
// to be canceled. Draining is terminal for the Server: bring up a
// fresh Server to serve again (a rolling restart replaces the
// process's server anyway).
func (s *Server) Drain(timeout time.Duration) bool {
	s.draining.Store(true)
	s.connMu.Lock()
	conns := make([]*servingConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.connMu.Unlock()

	hint := uint32(timeout.Milliseconds())
	for _, sc := range conns {
		// Best-effort: a connection that cannot take the frame is dying
		// already, and its client classifies the teardown as usual.
		sendStreamCtl(sc.conn, frameGoAway, 0, hint)
	}

	deadline := time.Now().Add(timeout)
	completed := waitSettled(conns, deadline)
	if !completed {
		// The deadline passed with work still in flight: cancel the
		// stragglers so workers finish promptly, then give them a
		// bounded moment to unwind before the sockets close.
		for _, sc := range conns {
			sc.calls.kill()
			sc.cs.cancelAll()
			sc.cs.fail(ErrDraining)
		}
		grace := timeout / 4
		if grace < 10*time.Millisecond {
			grace = 10 * time.Millisecond
		}
		waitSettled(conns, time.Now().Add(grace))
	}
	for _, sc := range conns {
		sc.conn.Close()
	}
	return completed
}

// waitSettled polls until every connection's in-flight gauge reaches
// zero or the deadline passes.
func waitSettled(conns []*servingConn, deadline time.Time) bool {
	for {
		settled := true
		for _, sc := range conns {
			if sc.inflight.Load() > 0 {
				settled = false
				break
			}
		}
		if settled {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}
