// Frame integrity: a Conn wrapper that detects damaged messages.
//
// A bit flip inside an RPC payload can decode into a perfectly valid —
// and perfectly wrong — value; no amount of header checking catches it.
// ChecksumConn models the link-layer integrity a real transport
// provides (UDP/TCP checksums, Ethernet CRC): every outbound frame
// carries a CRC32-C trailer and every inbound frame is verified and
// stripped. A frame that fails verification is *dropped silently*, the
// way a NIC discards a damaged packet, so corruption and truncation
// degrade into loss — which the retry layer already handles. Stacked
// outside a FaultConn this turns "the wire lies" into "the wire loses",
// and lets the chaos harness assert zero payload mismatches honestly.
package rt

import (
	"encoding/binary"
	"hash/crc32"
	"sync/atomic"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ChecksumConn adds and verifies a CRC32-C trailer on every frame.
type ChecksumConn struct {
	inner Conn
	// Rejected counts inbound frames dropped for a bad or missing
	// checksum (damaged in flight).
	Rejected atomic.Uint64
}

// WrapChecksum wraps a connection with per-frame CRC32-C integrity.
// Both ends must be wrapped.
func WrapChecksum(inner Conn) *ChecksumConn {
	return &ChecksumConn{inner: inner}
}

// Send transmits msg followed by its 4-byte CRC32-C.
func (c *ChecksumConn) Send(msg []byte) error {
	out := make([]byte, len(msg)+4)
	copy(out, msg)
	binary.BigEndian.PutUint32(out[len(msg):], crc32.Checksum(msg, crcTable))
	return c.inner.Send(out)
}

// Recv returns the next frame whose trailer verifies, stripped of the
// trailer. Damaged frames are counted in Rejected and skipped.
func (c *ChecksumConn) Recv() ([]byte, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		if len(msg) < 4 {
			c.Rejected.Add(1)
			continue
		}
		body := msg[:len(msg)-4]
		want := binary.BigEndian.Uint32(msg[len(msg)-4:])
		if crc32.Checksum(body, crcTable) != want {
			c.Rejected.Add(1)
			continue
		}
		return body, nil
	}
}

// Close closes the underlying connection.
func (c *ChecksumConn) Close() error { return c.inner.Close() }
