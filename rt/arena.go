// The receive arena: size-classed pooled buffers for inbound messages.
//
// Raw transports (TCP, UDP, in-process pipes) draw their Recv buffers
// here, and the pooled decoder returns them when the message dies —
// unless alias views handed out by AliasNext are still live, in which
// case the arena is *pinned*: recycling is forfeited and the garbage
// collector reclaims the buffer when the last view drops it. Pinning
// is what makes the decode-side zero-copy path memory-safe without a
// borrow checker: an escaped view can never observe another message's
// bytes, it can only cost one buffer reuse (and a counter records it,
// so the arenalife lint's findings are measurable at runtime too).
//
// Only conns implementing the arenaOwner marker participate: a wrapper
// that hands out sub-slices of a shared frame (BatchConn) must never
// have one message's backing array recycled under its siblings.
package rt

import "sync"

// Arena size classes. Most RPC messages fit the small class; the large
// classes serve the bulk-payload workloads the zero-copy path targets.
const (
	arenaSmall = 4 << 10
	arenaMid   = 64 << 10
	arenaBig   = 1 << 20
)

// arenaPools hold *[]byte boxes (no New: a miss returns nil and the
// caller allocates). The boxes themselves recycle through boxPool so a
// put never allocates a fresh slice-header box — the arena must not
// add a hidden allocation to the per-call fast path it exists to trim.
var arenaPools [3]sync.Pool

var boxPool = sync.Pool{New: func() any { return new([]byte) }}

var arenaClassSize = [3]int{arenaSmall, arenaMid, arenaBig}

func arenaClass(n int) int {
	switch {
	case n <= arenaSmall:
		return 0
	case n <= arenaMid:
		return 1
	case n <= arenaBig:
		return 2
	}
	return -1
}

// getArenaBuf returns an n-byte buffer, pooled when n fits a size
// class. Oversized requests fall back to a plain allocation that simply
// never re-enters the pool.
func getArenaBuf(n int) []byte {
	cl := arenaClass(n)
	if cl < 0 {
		return make([]byte, n)
	}
	zcCounters.arenaGets.Add(1)
	if bp, _ := arenaPools[cl].Get().(*[]byte); bp != nil {
		b := *bp
		*bp = nil
		boxPool.Put(bp)
		return b[:n]
	}
	// Miss: allocate the full class size so the buffer recycles by
	// capacity later.
	return make([]byte, arenaClassSize[cl])[:n]
}

// putArenaBuf recycles a buffer previously handed out by getArenaBuf.
// Buffers whose capacity matches no class (oversized allocations, or
// multi-fragment messages that outgrew their first buffer) are dropped
// to the garbage collector.
func putArenaBuf(b []byte) {
	var cl int
	switch cap(b) {
	case arenaSmall:
		cl = 0
	case arenaMid:
		cl = 1
	case arenaBig:
		cl = 2
	default:
		return
	}
	zcCounters.arenaPuts.Add(1)
	bp := boxPool.Get().(*[]byte)
	*bp = b[:cap(b)]
	arenaPools[cl].Put(bp)
}

// arenaOwner marks transports whose Recv buffers the receiver
// whole-owns (see the package comment above). Deliberately unexported:
// wrappers cannot opt in by accident.
type arenaOwner interface{ arenaOwned() }

// ownsArena reports whether c's received messages may be recycled
// through the arena pool once decoded.
func ownsArena(c Conn) bool {
	_, ok := c.(arenaOwner)
	return ok
}
