package rt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Server-push streaming: a //flick:stream operation sends its request
// once, then the server pushes a sequence of result-typed chunks under
// an explicit credit window instead of a single reply. The surface is
// built from the same primitives as the rest of the runtime — the
// request travels the ordinary oneway-style path (the dispatch arm
// suppresses the automatic reply), chunks are structurally-tagged
// frames the XID multiplexer routes around normal replies, and credits
// flow upstream as tiny control frames — so streams coexist with
// pipelined calls, batching, tracing annotations, and fault injection
// on one connection.
//
// Flow control is credit-based: the server may transmit one chunk per
// credit granted by the client and blocks otherwise, so a slow consumer
// propagates backpressure to the producer instead of ballooning
// buffers. A window of zero therefore provably blocks the sender until
// the first explicit Grant.
//
// Wire format. Every stream frame begins with a 16-byte header:
//
//	u32 magic (streamMagic, big-endian)
//	u32 kind  (chunk, end, err, grant, cancel, call-cancel, goaway)
//	u32 xid   (the stream's originating request XID)
//	u32 arg   (grant: credit count; err: error code; else zero)
//
// Control frames are exactly the header; a chunk frame carries the
// marshaled chunk payload after it. Like the batch and trace envelopes
// (proto.go) detection is structural, the envelope is protocol-
// independent, and the 16-byte prefix is a multiple of every protocol's
// MaxAlign so chunk payload alignment is preserved.

// streamMagic marks a stream frame. Like batchMagic it sits far outside
// the XID range a fresh client reaches and collides with no protocol's
// leading bytes.
const streamMagic uint32 = 0xFB1C_5EA0

const (
	streamChunk uint32 = iota + 1
	streamEnd
	streamErr
	streamGrant
	streamCancel
	// frameCallCancel is a client→server control frame abandoning the
	// in-flight call xid: the client stopped waiting (context cancel,
	// timeout, lost hedge race), so the server may release the work —
	// cancel its handler context, skip it if still queued — and must not
	// reply. Reuses the stream-frame envelope; xid addresses the call.
	frameCallCancel
	// frameGoAway is a server→client control frame announcing lameduck
	// drain (Server.Drain): the connection accepts no new requests and
	// will close once in-flight work settles. xid is zero; arg carries
	// the drain deadline hint in milliseconds. Clients mark the session
	// draining so pools migrate traffic to healthy sessions.
	frameGoAway
)

// streamErrWork is the err-frame code for a handler work error.
const streamErrWork uint32 = 1

const streamHeaderSize = 16

// ErrStreamBroken reports a stream torn down by transport failure —
// connection loss, a poisoned session, or a credit-protocol violation —
// rather than by the peer finishing or cancelling it. It classifies as
// retryable: the receiver cannot know how much of the transfer the
// sender completed, so the operation must be re-issued from the start.
var ErrStreamBroken = errors.New("rt: stream broken")

// ErrStreamCanceled reports a stream ended by the consumer's Cancel.
var ErrStreamCanceled = errors.New("rt: stream canceled")

// appendStreamHeader writes the 16-byte frame header.
func appendStreamHeader(e *Encoder, kind, xid, arg uint32) {
	e.Grow(streamHeaderSize)
	e.PutU32BE(streamMagic)
	e.PutU32BE(kind)
	e.PutU32BE(xid)
	e.PutU32BE(arg)
}

// SplitStream validates and splits a stream frame. It returns ok=true
// when msg is well-formed — payload aliases msg and is non-empty only
// for chunk frames — and ok=false otherwise, including for ordinary
// messages (which the caller parses as before).
func SplitStream(msg []byte) (kind, xid, arg uint32, payload []byte, ok bool) {
	if len(msg) < streamHeaderSize || beU32(msg) != streamMagic {
		return 0, 0, 0, nil, false
	}
	kind = beU32(msg[4:])
	if kind < streamChunk || kind > frameGoAway {
		return 0, 0, 0, nil, false
	}
	if kind != streamChunk && len(msg) != streamHeaderSize {
		// Control frames carry no payload; trailing bytes mean this is
		// not a stream frame.
		return 0, 0, 0, nil, false
	}
	return kind, beU32(msg[8:]), beU32(msg[12:]), msg[streamHeaderSize:], true
}

func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// sendStreamCtl transmits one 16-byte control frame.
func sendStreamCtl(conn Conn, kind, xid, arg uint32) error {
	e := getEncoder()
	appendStreamHeader(e, kind, xid, arg)
	err := conn.Send(e.Bytes())
	putEncoder(e)
	return err
}

// --- Client side --------------------------------------------------------------

// streamMsg is one delivery from the session reader to the consumer: a
// positioned chunk decoder, or the terminal error (io.EOF for a clean
// end-of-stream).
type streamMsg struct {
	dec *Decoder
	err error
}

// ClientStream is the consumer end of one server-push stream. Recv
// yields chunk decoders in transmission order and then a sticky
// terminal status; Grant extends the server's credit; Cancel tears the
// stream down early. Recv is single-consumer; Grant and Cancel may be
// called from other goroutines.
type ClientStream struct {
	c   *Client
	s   *session
	xid uint32
	// window is the construction-time credit level the consumer side
	// automatically restores as chunks are consumed (0 = fully manual).
	window int
	ch     chan streamMsg
	// ctx is the caller context from CallStreamCtx (nil for CallStream):
	// Recv aborts the stream when it is canceled or expires.
	ctx context.Context

	// mu guards the delivery side. Lock order: session.mu, then mu.
	mu   sync.Mutex
	done bool // terminal delivered into ch; late frames are dropped
	live int  // credits granted minus chunks delivered (bounds arrivals)
	// delivered counts chunks handed into ch, checked against the end
	// frame's chunk count so a transfer whose tail frames were lost in
	// transit classifies as broken instead of ending in a clean EOF.
	delivered uint32

	// Consumer-side state (Recv only, single consumer, no lock).
	finished bool
	ferr     error
	consumed int // chunks consumed since the last automatic re-grant
}

// CallStream begins one server-push streaming invocation: marshal
// writes the request payload, window grants the server its initial
// chunk credit (0 starts the stream fully blocked until Grant), and the
// returned stream yields the pushed chunks. The request is transmitted
// before CallStream returns; there is no retry path — a broken stream
// surfaces ErrStreamBroken and the caller decides whether to re-issue.
func (c *Client) CallStream(proc uint32, opName string, window int, marshal func(*Encoder)) (*ClientStream, error) {
	return c.CallStreamCtx(nil, proc, opName, window, marshal)
}

// CallStreamCtx is CallStream with a caller context: a ctx deadline
// travels on the wire as the deadline annotation (the server inherits
// the remaining budget and sheds the request if it expires in queue),
// and ctx cancellation or expiry aborts a blocked Recv, tearing the
// stream down exactly like a Recv timeout — terminal, with a
// best-effort cancel frame unblocking the server-side sender. A nil
// ctx is allowed and means "no propagated deadline or cancellation".
func (c *Client) CallStreamCtx(ctx context.Context, proc uint32, opName string, window int, marshal func(*Encoder)) (*ClientStream, error) {
	if window < 0 {
		window = 0
	}
	if c.closed.Load() {
		return nil, ErrClosed
	}
	var budget time.Duration
	hasBudget := false
	if ctx != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
			hasBudget = true
			if budget <= 0 {
				return nil, context.DeadlineExceeded
			}
		}
	}
	metrics := c.Metrics
	s, err := c.session(metrics, nil)
	if err != nil {
		return nil, err
	}
	xid := c.xid.Add(1)
	h := ReqHeader{
		XID:       xid,
		Prog:      c.Prog,
		Vers:      c.Vers,
		Proc:      proc,
		OpName:    opName,
		ObjectKey: c.ObjectKey,
	}
	enc := getEncoder()
	if metrics != nil {
		enc.EnableStats(true)
	}
	if hasBudget {
		// Outermost annotation, exactly as on the call path: see
		// beginAttempt. Deadline-less streams write nothing.
		writeDeadline(enc, budget)
	}
	c.proto.WriteRequest(enc, &h)
	marshal(enc)
	if metrics != nil {
		op := metrics.Op(opName)
		op.Calls.Add(1)
		op.ReqBytes.Add(uint64(enc.Len()))
		metrics.addEnc(enc.TakeStats())
	}

	// The channel must hold every chunk the server is entitled to send
	// plus the terminal marker; the slack beyond the window is what
	// explicit Grant can draw on (see Grant).
	slack := 8
	if window == 0 {
		slack = 16
	}
	st := &ClientStream{c: c, s: s, xid: xid, window: window, ctx: ctx, ch: make(chan streamMsg, window+slack)}

	// Register before sending so a chunk cannot race past its stream,
	// exactly like the call table's register-before-send.
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		putEncoder(enc)
		return nil, err
	}
	s.streams[xid] = st
	startReader := !s.readerOn
	if startReader {
		s.readerOn = true
	}
	s.mu.Unlock()
	if startReader {
		go c.readReplies(s)
	}

	err = s.conn.Send(enc.Bytes())
	putEncoder(enc)
	if err != nil {
		s.unregisterStream(xid)
		if c.closed.Load() || errors.Is(err, ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("rt: send: %w", err)
	}
	if window > 0 {
		st.mu.Lock()
		st.live = window
		st.mu.Unlock()
		if err := sendStreamCtl(s.conn, streamGrant, xid, uint32(window)); err != nil {
			s.unregisterStream(xid)
			st.drain()
			return nil, fmt.Errorf("rt: send: %w", err)
		}
	}
	return st, nil
}

// unregisterStream removes xid from the stream table, retiring it so
// late frames are recognized and dropped.
func (s *session) unregisterStream(xid uint32) {
	s.mu.Lock()
	if _, ok := s.streams[xid]; ok {
		delete(s.streams, xid)
		s.retired.add(xid)
	}
	s.mu.Unlock()
}

// Recv returns the next chunk, positioned for unmarshaling and owned by
// the caller (release with Decoder.Release), or the stream's terminal
// status: io.EOF after the server finished cleanly, ErrStreamCanceled
// after Cancel, an error matching ErrSystem for a handler work error,
// ErrStreamBroken for transport loss. The terminal status is sticky.
// With a construction window, consumed credit is re-granted
// automatically; a zero-window stream grants nothing until Grant.
func (st *ClientStream) Recv() (*Decoder, error) {
	if st.finished {
		return nil, st.ferr
	}
	var ctxDone <-chan struct{}
	if st.ctx != nil {
		ctxDone = st.ctx.Done()
	}
	var m streamMsg
	if t := st.c.Timeout; t > 0 {
		timer := time.NewTimer(t)
		select {
		case m = <-st.ch:
			timer.Stop()
		case <-timer.C:
			// The stream stalled past the call deadline: tear it down
			// like a timed-out call, but terminally (mid-stream state
			// cannot be resumed). Best-effort cancel so a sender merely
			// starved of credit (a lost grant frame) is unblocked rather
			// than orphaned until connection teardown.
			return st.abort(ErrTimeout)
		case <-ctxDone:
			timer.Stop()
			return st.abort(st.ctx.Err())
		}
	} else {
		select {
		case m = <-st.ch:
		case <-ctxDone:
			// A nil ctxDone never fires; with no Timeout and no ctx the
			// receive blocks, as it always has.
			return st.abort(st.ctx.Err())
		}
	}
	if m.err != nil {
		st.finished, st.ferr = true, m.err
		return nil, m.err
	}
	if st.window > 0 {
		st.consumed++
		if st.consumed >= (st.window+1)/2 {
			n := st.consumed
			st.consumed = 0
			if err := st.Grant(n); err != nil {
				st.s.unregisterStream(st.xid)
				st.terminate(err)
			}
		}
	}
	return m.dec, nil
}

// abort tears the stream down terminally with the given cause:
// unregister (late frames drop), deliver the terminal to the session
// reader's side, send a best-effort cancel frame so a server-side
// sender starved of credit unblocks instead of hanging until its own
// timeout, and drain already-buffered chunks back to the pool. The
// cause becomes the sticky terminal status.
func (st *ClientStream) abort(cause error) (*Decoder, error) {
	st.s.unregisterStream(st.xid)
	st.terminate(cause)
	sendStreamCtl(st.s.conn, streamCancel, st.xid, 0)
	st.drain()
	st.finished, st.ferr = true, cause
	return nil, cause
}

// Grant extends the server's chunk credit by n. It is how a zero-window
// stream makes progress and how a consumer paces a transfer by hand.
// The total outstanding credit is bounded by the stream's buffer; a
// grant that would overflow it fails without sending.
func (st *ClientStream) Grant(n int) error {
	if n <= 0 {
		return nil
	}
	st.mu.Lock()
	if st.done {
		err := ErrStreamBroken
		st.mu.Unlock()
		return err
	}
	if st.live+len(st.ch)+n > cap(st.ch)-1 {
		st.mu.Unlock()
		return fmt.Errorf("rt: stream grant of %d overflows the receive window", n)
	}
	st.live += n
	st.mu.Unlock()
	if err := sendStreamCtl(st.s.conn, streamGrant, st.xid, uint32(n)); err != nil {
		// A grant that cannot reach the server means the link under the
		// stream is gone: classify like any mid-stream transport death
		// (the session reader races to the same conclusion).
		return retryable(fmt.Errorf("%w: %v", ErrStreamBroken, err))
	}
	return nil
}

// Cancel tears the stream down from the consumer side: the server's
// sender unblocks with ErrStreamCanceled, buffered chunks are released,
// and Recv reports ErrStreamCanceled from now on. Safe to call at any
// point, from any goroutine, more than once.
func (st *ClientStream) Cancel() {
	st.s.unregisterStream(st.xid)
	if !st.terminate(ErrStreamCanceled) {
		// Already terminal (the server finished first, or a previous
		// Cancel won). The consumer is walking away regardless, so
		// chunks still buffered ahead of the terminal marker must go
		// back to the pool.
		st.drain()
		return
	}
	// Best-effort: the server may already be gone, which is fine — its
	// sender fails with the connection.
	sendStreamCtl(st.s.conn, streamCancel, st.xid, 0)
	st.drain()
}

// terminate delivers the terminal status into the channel exactly once,
// reporting whether this call was the one that ended the stream. The
// credit invariant (live + buffered < cap) guarantees the non-blocking
// send has room.
func (st *ClientStream) terminate(err error) bool {
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		return false
	}
	st.done = true
	st.mu.Unlock()
	st.deliverTerminal(err)
	return true
}

// deliverTerminal pushes the terminal marker, displacing buffered
// chunks if the channel is full (the stream is over; they will never be
// consumed). The two-way select cannot block: a channel is always
// either non-full or non-empty.
func (st *ClientStream) deliverTerminal(err error) {
	for {
		// Send first, displace only on a full channel: a combined
		// two-way select would pick at random when both are ready and
		// throw away a deliverable chunk.
		select {
		case st.ch <- streamMsg{err: err}:
			return
		default:
		}
		select {
		case m := <-st.ch:
			if m.dec != nil {
				putDecoder(m.dec)
			}
		default:
		}
	}
}

// drain releases chunk decoders buffered ahead of the terminal marker
// so a cancelled or abandoned stream leaks nothing. The terminal marker
// itself is preserved (pushed back) — a later Recv must still find it.
func (st *ClientStream) drain() {
	for {
		select {
		case m := <-st.ch:
			if m.dec != nil {
				putDecoder(m.dec)
				continue
			}
			// The terminal marker: put it back for Recv and stop (the
			// channel was just emptied down to it, so there is room).
			st.ch <- m
			return
		default:
			return
		}
	}
}

// deliverChunk hands one positioned chunk decoder to the consumer.
// Called by the session reader with session.mu held (which is what
// makes lookup-and-deliver atomic against unregister). A chunk beyond
// the granted credit is a protocol violation and tears the stream down.
func (st *ClientStream) deliverChunk(d *Decoder) {
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		putDecoder(d)
		return
	}
	if st.live == 0 {
		// The server sent more chunks than we granted: the window
		// contract is broken and buffer room is no longer guaranteed.
		st.done = true
		st.mu.Unlock()
		putDecoder(d)
		st.deliverTerminal(fmt.Errorf("%w: chunk beyond granted credit", ErrStreamBroken))
		return
	}
	st.live--
	st.delivered++
	// Ownership handoff, not retention: the consumer's Recv releases
	// the decoder. The credit invariant (live + buffered < cap)
	// guarantees room, so the send cannot block.
	st.ch <- streamMsg{dec: d} //lint:allow poolescape
	st.mu.Unlock()
}

// streamFrame routes one structurally-valid stream frame arriving on a
// client session. Unknown or retired XIDs are dropped (a cancelled
// stream keeps receiving in-flight chunks for a while; that is benign,
// not desynchronization).
func (c *Client) streamFrame(s *session, kind, xid, arg uint32, payload []byte, metrics *Metrics) {
	s.mu.Lock()
	st, ok := s.streams[xid]
	if !ok {
		stale := s.retired.has(xid)
		s.mu.Unlock()
		if metrics != nil && stale {
			metrics.StaleReplies.Add(1)
		}
		return
	}
	switch kind {
	case streamChunk:
		d := getDecoder()
		if metrics != nil {
			d.EnableStats(true)
			d.sink = metrics
		}
		d.Reset(payload)
		st.deliverChunk(d)
		s.mu.Unlock()
	case streamEnd:
		delete(s.streams, xid)
		s.retired.add(xid)
		s.mu.Unlock()
		// The end frame's arg is the sender's chunk count. A shortfall
		// means frames were lost in transit after the credit window
		// admitted them — a silently short transfer must classify as
		// broken, never as a clean end (a surplus is duplication, the
		// same contract violation from the other side).
		st.mu.Lock()
		delivered := st.delivered
		st.mu.Unlock()
		if delivered != arg {
			st.terminate(retryable(fmt.Errorf("%w: short delivery (%d of %d chunks)",
				ErrStreamBroken, delivered, arg)))
		} else {
			st.terminate(io.EOF)
		}
	case streamErr:
		delete(s.streams, xid)
		s.retired.add(xid)
		s.mu.Unlock()
		st.terminate(fmt.Errorf("rt: stream: %w", ErrSystem))
	default:
		// grant/cancel are upstream-only; a server echoing one is noise.
		s.mu.Unlock()
	}
}

// --- Server side --------------------------------------------------------------

// connStreams is one served connection's stream registry: credit
// ledgers keyed by request XID, shared between the decode loop (which
// applies grant/cancel control frames) and the workers running stream
// handlers (which block on credit). ServeConn fails the registry before
// waiting for its workers, so handlers never outlive the connection.
type connStreams struct {
	conn Conn

	mu      sync.Mutex
	m       map[uint32]*serverStream
	retired retiredRing
	failed  error
}

// serverStream is one stream's server-side credit ledger.
type serverStream struct {
	credits  int
	canceled bool
	cond     *sync.Cond // on connStreams.mu
}

func newConnStreams(conn Conn) *connStreams {
	return &connStreams{conn: conn, m: make(map[uint32]*serverStream)}
}

// ensure returns the ledger for xid, creating it if this side arrived
// first (the decode loop's grant and the worker's NewStreamSender race
// benignly; whoever is first creates the entry).
func (cs *connStreams) ensure(xid uint32) *serverStream {
	st := cs.m[xid]
	if st == nil {
		st = &serverStream{cond: sync.NewCond(&cs.mu)}
		cs.m[xid] = st
	}
	return st
}

// control applies one upstream control frame from the decode loop.
func (cs *connStreams) control(kind, xid, arg uint32) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.failed != nil || cs.retired.has(xid) {
		// A grant for a finished stream: late, benign, dropped.
		return
	}
	st := cs.ensure(xid)
	switch kind {
	case streamGrant:
		st.credits += int(arg)
	case streamCancel:
		st.canceled = true
	}
	st.cond.Broadcast()
}

// finish retires a stream's ledger, reporting whether the consumer had
// cancelled it.
func (cs *connStreams) finish(xid uint32) (canceled bool, failed error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if st := cs.m[xid]; st != nil {
		canceled = st.canceled
		delete(cs.m, xid)
	}
	cs.retired.add(xid)
	return canceled, cs.failed
}

// fail poisons the registry (first error wins) and wakes every blocked
// sender so workers drain instead of deadlocking connection teardown.
func (cs *connStreams) fail(err error) {
	cs.mu.Lock()
	if cs.failed == nil {
		cs.failed = err
	}
	for _, st := range cs.m {
		st.cond.Broadcast()
	}
	cs.mu.Unlock()
}

// StreamSender is the producer end of one server-push stream, held by a
// streaming handler through its generated ServerStream wrapper. Send
// blocks until the consumer's credit admits the chunk; Finish sends the
// terminal frame. A sender is single-producer: the handler goroutine.
type StreamSender struct {
	cs  *connStreams
	st  *serverStream
	xid uint32
	// ended suppresses the terminal frame when Send already observed
	// cancellation or connection failure.
	ended bool
	// sent counts successfully transmitted chunks; the end frame
	// carries it so the consumer can detect a short delivery.
	sent uint32
}

// NewStreamSender binds a sender to the request being dispatched.
// Generated stream dispatch arms call it after decoding arguments (and
// after setting OneWay, which suppresses the automatic reply that a
// single-shot operation would get).
func NewStreamSender(h *ReqHeader) *StreamSender {
	cs := h.streams
	if cs == nil {
		// Dispatched outside a serving connection (direct tests, exotic
		// embeddings): a detached sender whose Send reports the absence.
		return &StreamSender{xid: h.XID}
	}
	cs.mu.Lock()
	st := cs.ensure(h.XID)
	cs.mu.Unlock()
	return &StreamSender{cs: cs, st: st, xid: h.XID}
}

// Send transmits one chunk, blocking until the consumer has granted
// credit for it. It returns ErrStreamCanceled once the consumer
// cancels and an error matching ErrStreamBroken once the connection
// fails; either way the handler should unwind (its remaining work is
// unobservable).
func (sn *StreamSender) Send(marshal func(*Encoder)) error {
	cs := sn.cs
	if cs == nil {
		sn.ended = true
		return fmt.Errorf("%w: no stream transport attached", ErrStreamBroken)
	}
	cs.mu.Lock()
	st := sn.st
	for st.credits == 0 && !st.canceled && cs.failed == nil {
		st.cond.Wait()
	}
	if st.canceled {
		cs.mu.Unlock()
		sn.ended = true
		return ErrStreamCanceled
	}
	if err := cs.failed; err != nil {
		cs.mu.Unlock()
		sn.ended = true
		return fmt.Errorf("%w: %v", ErrStreamBroken, err)
	}
	st.credits--
	cs.mu.Unlock()

	e := getEncoder()
	appendStreamHeader(e, streamChunk, sn.xid, 0)
	marshal(e)
	err := cs.conn.Send(e.Bytes())
	putEncoder(e)
	if err != nil {
		cs.fail(err)
		sn.ended = true
		return fmt.Errorf("%w: %v", ErrStreamBroken, err)
	}
	sn.sent++
	return nil
}

// Finish ends the stream: a clean end frame after workErr == nil, an
// error frame otherwise (the consumer's Recv reports ErrSystem, exactly
// as a failing single-shot dispatch would). Generated dispatch arms
// call it with the handler's return value; it is a no-op when the
// stream already ended (cancel, connection failure, detached sender).
func (sn *StreamSender) Finish(workErr error) {
	cs := sn.cs
	if cs == nil || sn.ended {
		return
	}
	sn.ended = true
	canceled, failed := cs.finish(sn.xid)
	if canceled || failed != nil {
		return // nobody is listening
	}
	kind, arg := streamEnd, sn.sent
	if workErr != nil {
		kind, arg = streamErr, streamErrWork
	}
	if err := sendStreamCtl(cs.conn, kind, sn.xid, arg); err != nil {
		cs.fail(err)
	}
}
