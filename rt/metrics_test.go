package rt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram --------------------------------------------------------------

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1 << 38, 39},
		{1 << 50, NumLatencyBuckets - 1}, // clamp
		{^uint64(0), NumLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestBucketUpper(t *testing.T) {
	// Every value must fall strictly below its bucket's upper edge.
	for _, ns := range []uint64{1, 2, 3, 100, 1023, 1024, 1 << 20} {
		up := BucketUpper(bucketIndex(ns))
		if time.Duration(ns) >= up {
			t.Errorf("ns=%d not below bucket upper %d", ns, up)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket 7 (64..127)
	h.Observe(100 * time.Nanosecond)
	h.Observe(5 * time.Microsecond) // 5000ns, bucket 13
	h.Observe(-time.Second)         // clamped to 0, bucket 0

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNs != 100+100+5000+0 {
		t.Errorf("sum = %d", s.SumNs)
	}
	if s.MaxNs != 5000 {
		t.Errorf("max = %d", s.MaxNs)
	}
	if s.Buckets[7] != 2 || s.Buckets[13] != 1 || s.Buckets[0] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:16])
	}
	if s.Mean() != time.Duration(5200/4) {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// 90 fast observations (100ns, bucket 7) and 10 slow (1ms, bucket 20).
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != BucketUpper(7) {
		t.Errorf("p50 = %v, want %v", got, BucketUpper(7))
	}
	if got := s.Quantile(0.90); got != BucketUpper(7) {
		t.Errorf("p90 = %v, want %v (rank 90 is the last fast observation)", got, BucketUpper(7))
	}
	if got := s.Quantile(0.99); got != BucketUpper(20) {
		t.Errorf("p99 = %v, want %v", got, BucketUpper(20))
	}
	if got := s.Quantile(1); got != BucketUpper(20) {
		t.Errorf("p100 = %v, want %v", got, BucketUpper(20))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	if s.MaxNs != 7*1000+999 {
		t.Errorf("max = %d", s.MaxNs)
	}
	var inBuckets uint64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != s.Count {
		t.Errorf("bucket total %d != count %d", inBuckets, s.Count)
	}
}

// --- metrics registry -------------------------------------------------------

func TestMetricsConcurrentOps(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := m.Op("op-" + string(rune('a'+i%3)))
				op.Calls.Add(1)
				op.ReqBytes.Add(10)
				op.Latency.Observe(time.Microsecond)
				m.Conns.Add(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if len(s.Ops) != 3 {
		t.Fatalf("ops = %d", len(s.Ops))
	}
	var calls, req uint64
	for _, op := range s.Ops {
		calls += op.Calls
		req += op.ReqBytes
		if op.Latency.Count != op.Calls {
			t.Errorf("op %s latency count %d != calls %d", op.Op, op.Latency.Count, op.Calls)
		}
	}
	if calls != workers*per || req != workers*per*10 {
		t.Errorf("calls=%d req=%d", calls, req)
	}
	if s.Conns != workers*per {
		t.Errorf("conns = %d", s.Conns)
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	m := NewMetrics()
	op := m.Op("ping")
	op.Calls.Add(3)
	op.Errors.Add(1)
	op.Latency.Observe(time.Millisecond)
	m.BadHeaders.Add(2)

	s := m.Snapshot()
	text := s.String()
	for _, want := range []string{
		"flick_bad_headers 2\n",
		`flick_op_calls{op="ping"} 3` + "\n",
		`flick_op_errors{op="ping"} 1` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BadHeaders != 2 || len(back.Ops) != 1 || back.Ops[0].Calls != 3 {
		t.Errorf("JSON round trip = %+v", back)
	}

	// WriteTo returns the byte count it wrote.
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Errorf("WriteTo = %d, %v; buffer %d", n, err, buf.Len())
	}
}

// --- encoder / decoder counters --------------------------------------------

func TestEncoderStats(t *testing.T) {
	var e Encoder
	// Counting is off by default (the disabled fast path).
	e.Grow(4)
	if s := e.Stats(); s != (EncStats{}) {
		t.Errorf("counters advanced while disabled: %+v", s)
	}
	e.EnableStats(true)
	e.Grow(4)
	e.PutU32BE(1)
	e.Grow(1 << 20) // must reallocate
	s := e.TakeStats()
	if s.GrowChecks != 2 {
		t.Errorf("grow checks = %d", s.GrowChecks)
	}
	if s.GrowAllocs == 0 || s.GrowAllocs > 2 {
		t.Errorf("grow allocs = %d", s.GrowAllocs)
	}
	if after := e.TakeStats(); after != (EncStats{}) {
		t.Errorf("TakeStats did not drain: %+v", after)
	}
}

func TestDecoderStats(t *testing.T) {
	var d Decoder
	d.Reset([]byte{0, 0, 0, 7})
	// Counting is off by default (the disabled fast path).
	d.Ensure(4)
	if s := d.Stats(); s != (DecStats{}) {
		t.Errorf("counters advanced while disabled: %+v", s)
	}
	d.EnableStats(true)
	d.Reset([]byte{0, 0, 0, 7})
	if !d.Ensure(4) {
		t.Fatal("Ensure(4) failed")
	}
	d.U32BE()
	if d.Ensure(4) { // truncated
		t.Fatal("Ensure past end succeeded")
	}
	s := d.TakeStats()
	if s.EnsureChecks != 2 {
		t.Errorf("ensure checks = %d", s.EnsureChecks)
	}
	if s.Failures != 1 {
		t.Errorf("failures = %d", s.Failures)
	}
	if after := d.TakeStats(); after != (DecStats{}) {
		t.Errorf("TakeStats did not drain: %+v", after)
	}
}

// --- end-to-end loopback ----------------------------------------------------

// echoDispatch implements a tiny protocol: proc 1 doubles a u32, proc 2
// always fails, proc 3 is oneway.
func echoDispatch(h *ReqHeader, d *Decoder, e *Encoder) error {
	switch h.Proc {
	case 1:
		h.OpName = "double"
		if !d.Ensure(4) {
			return d.Err()
		}
		v := d.U32BE()
		e.PutU32BEC(2 * v)
		return nil
	case 2:
		h.OpName = "fail"
		return errors.New("work failed")
	case 3:
		h.OpName = "note"
		h.OneWay = true
		return nil
	}
	return ErrNoSuchOp
}

func startObservedServer(t *testing.T) (Conn, *Metrics, chan struct{}) {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Metrics = NewMetrics()
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return clientEnd, s.Metrics, done
}

func TestLoopbackMetricsE2E(t *testing.T) {
	conn, sm, done := startObservedServer(t)

	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	cm := NewMetrics()
	c.Metrics = cm

	// Three successful calls.
	for i := uint32(1); i <= 3; i++ {
		d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(i) })
		if err != nil {
			t.Fatal(err)
		}
		if !d.Ensure(4) {
			t.Fatal(d.Err())
		}
		if got := d.U32BE(); got != 2*i {
			t.Errorf("double(%d) = %d", i, got)
		}
		d.Release()
	}
	// One failing call (server work error -> system error reply).
	if _, err := c.Call(2, "fail", false, func(e *Encoder) {}); !errors.Is(err, ErrSystem) {
		t.Errorf("fail call err = %v", err)
	}
	// One oneway.
	if _, err := c.Call(3, "note", true, func(e *Encoder) {}); err != nil {
		t.Fatal(err)
	}
	// Follow with a two-way call so the oneway is surely dispatched.
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(9) }); err != nil {
		t.Fatal(err)
	}

	cs := cm.Snapshot()
	if got := findOp(t, cs, "double").Calls; got != 4 {
		t.Errorf("client double calls = %d", got)
	}
	if op := findOp(t, cs, "fail"); op.Calls != 1 || op.Errors != 1 {
		t.Errorf("client fail op = %+v", op)
	}
	if cs.Oneways != 1 {
		t.Errorf("client oneways = %d", cs.Oneways)
	}
	if cs.EncGrowChecks == 0 || cs.DecEnsureChecks == 0 {
		t.Errorf("client enc/dec counters not folded: %+v", cs)
	}
	for _, op := range cs.Ops {
		if op.Calls != op.Latency.Count {
			t.Errorf("op %s: calls %d != latency count %d", op.Op, op.Calls, op.Latency.Count)
		}
		if op.Calls > 0 && op.ReqBytes == 0 {
			t.Errorf("op %s: no request bytes recorded", op.Op)
		}
	}

	// Close the connection and wait for the server loop to exit: every
	// finishRequest has then run.
	conn.Close()
	<-done

	ss := sm.Snapshot()
	if ss.Conns != 1 {
		t.Errorf("server conns = %d", ss.Conns)
	}
	if op := findOp(t, ss, "double"); op.Calls != 4 || op.RepBytes == 0 {
		t.Errorf("server double op = %+v", op)
	}
	if op := findOp(t, ss, "fail"); op.Errors != 1 {
		t.Errorf("server fail op = %+v", op)
	}
	if op := findOp(t, ss, "note"); op.Calls != 1 || op.RepBytes != 0 {
		t.Errorf("server note op = %+v", op)
	}
	if ss.DispatchErrors != 1 || ss.Oneways != 1 {
		t.Errorf("server globals = %+v", ss)
	}
}

func findOp(t *testing.T, s Snapshot, name string) OpSnapshot {
	t.Helper()
	for _, op := range s.Ops {
		if op.Op == name {
			return op
		}
	}
	t.Fatalf("op %q not in snapshot (have %v)", name, opNames(s))
	return OpSnapshot{}
}

func opNames(s Snapshot) []string {
	var out []string
	for _, op := range s.Ops {
		out = append(out, op.Op)
	}
	return out
}

// --- dropped requests and desynchronized replies ---------------------------

func TestBadHeaderDropCounted(t *testing.T) {
	conn, sm, _ := startObservedServer(t)

	// Garbage: too short to be an ONC call header. The server must drop
	// it, count it, and keep serving.
	if err := conn.Send([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(21) })
	if err != nil {
		t.Fatal(err)
	}
	if !d.Ensure(4) || d.U32BE() != 42 {
		t.Errorf("call after dropped garbage failed")
	}
	d.Release()
	if got := sm.BadHeaders.Load(); got != 1 {
		t.Errorf("bad headers = %d", got)
	}
}

// xidCorruptor flips the reply xid (first four bytes of an ONC reply).
type xidCorruptor struct{ Conn }

func (c *xidCorruptor) Recv() ([]byte, error) {
	msg, err := c.Conn.Recv()
	if err == nil && len(msg) >= 4 {
		x := binary.BigEndian.Uint32(msg)
		binary.BigEndian.PutUint32(msg, x^0xdeadbeef)
	}
	return msg, err
}

func TestBadXIDCounted(t *testing.T) {
	conn, _, _ := startObservedServer(t)

	c := NewClient(&xidCorruptor{conn}, ONC{})
	c.Prog, c.Vers = 7, 1
	cm := NewMetrics()
	c.Metrics = cm

	_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, ErrBadXID) {
		t.Fatalf("err = %v, want ErrBadXID", err)
	}
	if got := cm.BadXIDs.Load(); got != 1 {
		t.Errorf("bad xids = %d", got)
	}
	if op := findOp(t, cm.Snapshot(), "double"); op.Errors != 1 {
		t.Errorf("double errors = %d", op.Errors)
	}
}

// --- Serve connection-error routing ----------------------------------------

// failConn errors on the first Recv with a non-EOF failure.
type failConn struct{ recvErr error }

func (c *failConn) Send([]byte) error     { return nil }
func (c *failConn) Recv() ([]byte, error) { return nil, c.recvErr }
func (c *failConn) Close() error          { return nil }

// oneShotListener yields one connection, then blocks until closed.
type oneShotListener struct {
	conn Conn
	once sync.Once
	ch   chan Conn
}

func newOneShotListener(c Conn) *oneShotListener {
	l := &oneShotListener{conn: c, ch: make(chan Conn, 1)}
	l.ch <- c
	return l
}

func (l *oneShotListener) Accept() (Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}
func (l *oneShotListener) Close() error { l.once.Do(func() { close(l.ch) }); return nil }
func (l *oneShotListener) Addr() string { return "test" }

func TestServeRoutesConnErrors(t *testing.T) {
	s := NewServer(ONC{})
	s.Metrics = NewMetrics()
	var events []TraceKind
	var mu sync.Mutex
	s.Hooks = TraceFunc(func(ev *TraceEvent) {
		mu.Lock()
		events = append(events, ev.Kind)
		mu.Unlock()
	})

	l := newOneShotListener(&failConn{recvErr: errors.New("wire torn")})
	go func() {
		time.Sleep(5 * time.Millisecond)
		l.Close()
	}()
	if err := s.Serve(l); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve = %v", err)
	}
	// Give the per-connection goroutine time to record the failure.
	deadline := time.Now().Add(time.Second)
	for s.Metrics.ConnErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Metrics.ConnErrors.Load(); got != 1 {
		t.Fatalf("conn errors = %d", got)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, k := range events {
		if k == TraceConnError {
			found = true
		}
	}
	if !found {
		t.Errorf("no TraceConnError event (got %v)", events)
	}
}

// --- trace hooks ------------------------------------------------------------

func TestClientTraceHook(t *testing.T) {
	conn, _, _ := startObservedServer(t)

	var mu sync.Mutex
	var got []*TraceEvent
	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	c.Hooks = TraceFunc(func(ev *TraceEvent) {
		mu.Lock()
		cp := *ev
		got = append(got, &cp)
		mu.Unlock()
	})

	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(5) }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("events = %d", len(got))
	}
	ev := got[0]
	if ev.Kind != TraceClientCall || ev.Op != "double" || ev.XID == 0 {
		t.Errorf("event = %+v", ev)
	}
	if ev.Begin.IsZero() || ev.Sent.IsZero() || ev.End.IsZero() {
		t.Errorf("missing phase timestamps: %+v", ev)
	}
	if ev.Sent.Before(ev.Begin) || ev.End.Before(ev.Sent) {
		t.Errorf("timestamps out of order: %+v", ev)
	}
	if ev.ReqBytes == 0 || ev.RepBytes == 0 {
		t.Errorf("byte sizes missing: %+v", ev)
	}
	if len(ev.ReqWire) != 0 {
		t.Errorf("TraceFunc must not capture wire dumps")
	}
}

func TestLogHookVerbosity(t *testing.T) {
	var quiet, all, wire bytes.Buffer
	ok := &TraceEvent{Kind: TraceClientCall, Op: "ping", XID: 1, ReqBytes: 44}
	bad := &TraceEvent{Kind: TraceClientCall, Op: "ping", XID: 2, Err: errors.New("boom")}

	h0 := &LogHook{W: &quiet, Verbosity: 0}
	h0.Trace(ok)
	h0.Trace(bad)
	if strings.Contains(quiet.String(), "xid=1") {
		t.Errorf("verbosity 0 logged a success:\n%s", quiet.String())
	}
	if !strings.Contains(quiet.String(), `err="boom"`) {
		t.Errorf("verbosity 0 missed the failure:\n%s", quiet.String())
	}

	h1 := &LogHook{W: &all, Verbosity: 1}
	if h1.WantWire() {
		t.Error("verbosity 1 must not request wire dumps")
	}
	h1.Trace(ok)
	if !strings.Contains(all.String(), "client-call ping xid=1") {
		t.Errorf("verbosity 1 output:\n%s", all.String())
	}

	h2 := &LogHook{W: &wire, Verbosity: 2}
	if !h2.WantWire() {
		t.Error("verbosity 2 must request wire dumps")
	}
	dump := &TraceEvent{Kind: TraceServerDispatch, Op: "d", ReqWire: bytes.Repeat([]byte{0xab}, 300)}
	h2.Trace(dump)
	out := wire.String()
	if !strings.Contains(out, "request wire (300 bytes)") || !strings.Contains(out, "truncated") {
		t.Errorf("verbosity 2 dump:\n%s", out)
	}
}

func TestTraceKindString(t *testing.T) {
	for k, want := range map[TraceKind]string{
		TraceClientCall:     "client-call",
		TraceServerDispatch: "server-dispatch",
		TraceBadHeader:      "bad-header",
		TraceConnError:      "conn-error",
		TraceKind(99):       "TraceKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
}

// --- zero-cost disabled path ------------------------------------------------

// TestCallAllocsUnchanged guards the fast path: with observability
// disabled, a loopback Call must not allocate more than the seed's
// baseline (5 allocs: pipe message + decoder bookkeeping).
func TestCallAllocsUnchanged(t *testing.T) {
	conn, _, _ := startObservedServer(t)
	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	marshal := func(e *Encoder) { e.PutU32BEC(4) }
	avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Call(1, "double", false, marshal); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 5 {
		t.Errorf("Call allocates %.1f/op with observability disabled (budget 5)", avg)
	}
}

func TestObservePathAllocs(t *testing.T) {
	var h Histogram
	if avg := testing.AllocsPerRun(100, func() { h.Observe(time.Microsecond) }); avg != 0 {
		t.Errorf("Observe allocates %.1f/op", avg)
	}
	m := NewMetrics()
	m.Op("warm") // pre-register so the steady state is measured
	if avg := testing.AllocsPerRun(100, func() { m.Op("warm").Calls.Add(1) }); avg != 0 {
		t.Errorf("Op+Add allocates %.1f/op", avg)
	}
	var e Encoder
	e.Grow(1 << 12)
	e.Reset()
	if avg := testing.AllocsPerRun(100, func() { e.Reset(); e.Grow(64) }); avg != 0 {
		t.Errorf("Grow allocates %.1f/op after warmup", avg)
	}
}

// --- benchmarks -------------------------------------------------------------

func benchClient(b *testing.B, metrics *Metrics, hooks TraceHook) {
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Register(7, 1, echoDispatch)
	go s.ServeConn(serverEnd)
	b.Cleanup(func() { clientEnd.Close() })

	c := NewClient(clientEnd, ONC{})
	c.Prog, c.Vers = 7, 1
	c.Metrics = metrics
	c.Hooks = hooks
	marshal := func(e *Encoder) { e.PutU32BEC(4) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(1, "double", false, marshal); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientCall(b *testing.B)        { benchClient(b, nil, nil) }
func BenchmarkClientCallMetrics(b *testing.B) { benchClient(b, NewMetrics(), nil) }
func BenchmarkClientCallTraced(b *testing.B) {
	benchClient(b, NewMetrics(), TraceFunc(func(*TraceEvent) {}))
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < 8; i++ {
		op := m.Op(fmt.Sprintf("op-%d", i))
		op.Calls.Add(uint64(i))
		op.Latency.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Snapshot().WriteTo(io.Discard)
	}
}
