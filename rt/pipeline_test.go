package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the concurrent call engine: XID multiplexing, pipelined
// dispatch, pooled buffer ownership, deadlines, and teardown semantics.
// Run with -race; most of these exist to give the detector something to
// chew on.

// startEchoServer serves echoDispatch on one end of a transport with the
// given worker count and returns the client end.
func startEchoServer(t *testing.T, workers int) Conn {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = workers
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return clientEnd
}

func newEchoClient(conn Conn) *Client {
	c := NewClient(conn, ONC{})
	c.Prog, c.Vers = 7, 1
	return c
}

// doubleCall issues one double() round trip and verifies the reply,
// releasing the pooled decoder like a generated stub would.
func doubleCall(t *testing.T, c *Client, v uint32) {
	t.Helper()
	d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(v) })
	if err != nil {
		t.Fatalf("double(%d): %v", v, err)
	}
	if !d.Ensure(4) {
		t.Fatalf("double(%d): %v", v, d.Err())
	}
	if got := d.U32BE(); got != 2*v {
		t.Errorf("double(%d) = %d (reply cross-matched?)", v, got)
	}
	d.Release()
}

// TestCallAfterClose guards the closed-state contract: Call on a closed
// client reports ErrClosed, not a transport error.
func TestCallAfterClose(t *testing.T) {
	conn := startEchoServer(t, 1)
	c := newEchoClient(conn)
	doubleCall(t, c, 7)
	c.Close()
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
	// Idempotent close.
	if err := c.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v", err)
	}
}

// TestCloseMidFlight closes the client while calls are blocked waiting
// for replies: every pending call must drain with ErrClosed.
func TestCloseMidFlight(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)

	// The peer swallows requests without replying.
	swallowed := make(chan struct{}, 8)
	go func() {
		for {
			if _, err := serverEnd.Recv(); err != nil {
				return
			}
			swallowed <- struct{}{}
		}
	}()

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		<-swallowed // all four requests are in flight
	}
	c.Close()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Errorf("mid-flight call drained with %v, want ErrClosed", err)
		}
	}
}

// TestPeerFailureDrain kills the connection from the server side while
// calls are in flight: the reply reader must drain every pending call
// with the terminal error instead of leaving goroutines stuck.
func TestPeerFailureDrain(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)

	swallowed := make(chan struct{}, 8)
	go func() {
		for {
			if _, err := serverEnd.Recv(); err != nil {
				return
			}
			swallowed <- struct{}{}
		}
	}()

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		<-swallowed
	}
	serverEnd.Close() // peer dies
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Errorf("pending call drained with %v, want wrapped ErrClosed", err)
		}
	}
	// The client is poisoned: later calls fail fast.
	if _, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) }); err == nil {
		t.Error("Call on poisoned client succeeded")
	}
}

// TestPipeDoubleClose is a regression test: closing both ends of a Pipe
// must not panic (the teardown state is shared, the Once must be too).
func TestPipeDoubleClose(t *testing.T) {
	a, b := Pipe()
	a.Close()
	b.Close()
	a.Close()
}

// TestConcurrentCallsTransports hammers one multiplexed client from
// several goroutines across each transport and verifies every reply
// reaches its caller (a cross-matched XID shows up as a wrong double).
func TestConcurrentCallsTransports(t *testing.T) {
	const goroutines, perG = 4, 25

	run := func(t *testing.T, conn Conn) {
		c := newEchoClient(conn)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					doubleCall(t, c, uint32(g*1000+i+1))
				}
			}(g)
		}
		wg.Wait()
	}

	t.Run("pipe", func(t *testing.T) {
		run(t, startEchoServer(t, 4))
	})

	t.Run("tcp", func(t *testing.T) {
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		s := NewServer(ONC{})
		s.Workers = 4
		s.Register(7, 1, echoDispatch)
		go s.Serve(l)
		conn, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		run(t, conn)
	})

	t.Run("udp", func(t *testing.T) {
		serverConn, addr, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { serverConn.Close() })
		s := NewServer(ONC{})
		s.Workers = 4
		s.Register(7, 1, echoDispatch)
		go s.ServeConn(serverConn)
		conn, err := DialUDP(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		run(t, conn)
	})
}

// gatedDispatch answers proc 1 ("slow") only after gate closes and
// proc 2 ("fast") immediately; proc 3 is a oneway note.
func gatedDispatch(gate chan struct{}, notes *atomic.Uint32) Dispatch {
	return func(h *ReqHeader, d *Decoder, e *Encoder) error {
		switch h.Proc {
		case 1:
			h.OpName = "slow"
			<-gate
			e.PutU32BEC(111)
			return nil
		case 2:
			h.OpName = "fast"
			e.PutU32BEC(222)
			return nil
		case 3:
			h.OpName = "note"
			h.OneWay = true
			if notes != nil {
				notes.Add(1)
			}
			return nil
		}
		return ErrNoSuchOp
	}
}

// TestOutOfOrderCompletion verifies the whole point of the pipeline: a
// cheap request issued after an expensive one completes first, and the
// expensive one's reply still reaches its caller.
func TestOutOfOrderCompletion(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	gate := make(chan struct{})
	s := NewServer(ONC{})
	s.Workers = 2
	s.Register(7, 1, gatedDispatch(gate, nil))
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	slowDone := make(chan uint32, 1)
	go func() {
		d, err := c.Call(1, "slow", false, func(e *Encoder) {})
		if err != nil {
			slowDone <- 0
			return
		}
		d.Ensure(4)
		v := d.U32BE()
		d.Release()
		slowDone <- v
	}()

	// The fast call must complete while slow is still gated.
	d, err := c.Call(2, "fast", false, func(e *Encoder) {})
	if err != nil {
		t.Fatal(err)
	}
	d.Ensure(4)
	if got := d.U32BE(); got != 222 {
		t.Fatalf("fast reply = %d", got)
	}
	d.Release()
	select {
	case <-slowDone:
		t.Fatal("slow call completed before its gate opened")
	default:
	}

	close(gate)
	if got := <-slowDone; got != 111 {
		t.Errorf("slow reply = %d", got)
	}
}

// TestOnewayInterleaving mixes oneway notes with two-way calls on one
// pipelined connection: the oneways must all arrive, produce no replies,
// and not desynchronize the two-way reply stream.
func TestOnewayInterleaving(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	gate := make(chan struct{})
	close(gate) // slow path unused; keep it open
	var notes atomic.Uint32
	s := NewServer(ONC{})
	s.Workers = 2
	s.Register(7, 1, gatedDispatch(gate, &notes))
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if _, err := c.Call(3, "note", true, func(e *Encoder) {}); err != nil {
			t.Fatal(err)
		}
		d, err := c.Call(2, "fast", false, func(e *Encoder) {})
		if err != nil {
			t.Fatal(err)
		}
		d.Ensure(4)
		if got := d.U32BE(); got != 222 {
			t.Fatalf("round %d: fast reply = %d", i, got)
		}
		d.Release()
	}
	// The two-way replies fence the oneways: all notes have dispatched.
	deadline := time.Now().Add(2 * time.Second)
	for notes.Load() != rounds && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := notes.Load(); got != rounds {
		t.Errorf("server saw %d oneway notes, want %d", got, rounds)
	}
}

// TestCallTimeout verifies per-call deadlines: the timed-out call
// returns ErrTimeout, its late reply is dropped (and counted) without
// poisoning the connection, and later calls still work.
func TestCallTimeout(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	gate := make(chan struct{})
	s := NewServer(ONC{})
	s.Workers = 2
	s.Register(7, 1, gatedDispatch(gate, nil))
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	c := newEchoClient(clientEnd)
	c.Metrics = NewMetrics()
	c.Timeout = 25 * time.Millisecond

	if _, err := c.Call(1, "slow", false, func(e *Encoder) {}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("gated call = %v, want ErrTimeout", err)
	}
	close(gate) // the late reply arrives now and must be dropped

	// The connection survives: a fast call succeeds within the deadline.
	d, err := c.Call(2, "fast", false, func(e *Encoder) {})
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	d.Ensure(4)
	if got := d.U32BE(); got != 222 {
		t.Errorf("fast reply = %d", got)
	}
	d.Release()

	deadline := time.Now().Add(2 * time.Second)
	for c.Metrics.StaleReplies.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Metrics.StaleReplies.Load(); got != 1 {
		t.Errorf("StaleReplies = %d, want 1", got)
	}
	if got := c.Metrics.BadXIDs.Load(); got != 0 {
		t.Errorf("BadXIDs = %d (late reply poisoned the client)", got)
	}
}

// TestReleasedCallAllocs guards the pooled buffer-ownership fast path:
// a loopback Call whose caller releases the reply decoder (as generated
// stubs do) must stay within the seed's 5-alloc budget with room to
// spare — the pools exist to get the steady state below it.
func TestReleasedCallAllocs(t *testing.T) {
	conn := startEchoServer(t, 1)
	c := newEchoClient(conn)
	marshal := func(e *Encoder) { e.PutU32BEC(4) }
	avg := testing.AllocsPerRun(200, func() {
		d, err := c.Call(1, "double", false, marshal)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Ensure(4) {
			t.Fatal(d.Err())
		}
		d.U32BE()
		d.Release()
	})
	// 2 pipe copies + header escapes; the pooled encoder, decoder, and
	// call slot must not add steady-state allocations.
	if avg > 5 {
		t.Errorf("released Call allocates %.1f/op (budget 5)", avg)
	}
}
