// Sharded connection pool: the client half of the scale-out fabric.
//
// One multiplexed session hides latency well, but at serving scale it
// becomes the bottleneck — a single reply-reader goroutine, a single
// wire, and a single failure domain. ClientPool shards traffic over N
// independent sessions to the same target, each with its own breaker,
// redial loop, and (optionally) coalescing writer, and dispatches calls
// round-robin or by consistent-hash over the operation name. A session
// whose breaker has opened or whose connection is poisoned beyond
// redial is skipped at dispatch time; a call that fails on one session
// with a provably-safe-to-resend error fails over to the next.
package rt

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// DispatchPolicy selects how a ClientPool spreads calls over sessions.
type DispatchPolicy int

const (
	// RoundRobin rotates calls across sessions — the default, and the
	// right choice when every session reaches the same server.
	RoundRobin DispatchPolicy = iota
	// HashByOp pins each operation name to one session (FNV-1a mod
	// pool size), keeping one operation's calls in order on the wire
	// and giving per-op server-side caches locality. Other sessions
	// still serve as failover targets.
	HashByOp
)

// PoolConfig describes a ClientPool. Dial and Proto are required;
// every other field has a usable zero value.
type PoolConfig struct {
	// Size is the number of sessions (default 4).
	Size int
	// Dial opens the i-th session's connection; it is also used for
	// redials of that session when Redial is set.
	Dial func(i int) (Conn, error)
	// Policy selects the dispatch strategy (default RoundRobin).
	Policy DispatchPolicy

	// Proto is the wire protocol; Prog/Vers/ObjectKey identify the
	// target exactly as on Client (ObjectKey defaults to "flick").
	Proto     Protocol
	Prog      uint32
	Vers      uint32
	ObjectKey []byte

	// Timeout bounds each attempt's reply wait, per session.
	Timeout time.Duration
	// Retry is shared by all sessions (RetryPolicy is concurrency-safe;
	// sharing one keeps the jitter stream common).
	Retry *RetryPolicy
	// BreakerThreshold, when positive, attaches a per-session Breaker
	// with this consecutive-failure threshold and BreakerCooldown.
	// Per-session breakers are what make failover useful: one dead
	// session opens its own breaker and drops out of dispatch while the
	// rest keep serving.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Redial, when true, lets each session redial itself (via Dial with
	// its own index) after its connection is poisoned.
	Redial bool

	// Batch, when non-nil, wraps every session's connection in a
	// BatchConn with this configuration — the adaptive-batching half of
	// the fabric. The config's Metrics defaults to the pool's.
	Batch *BatchConfig

	// Hedge, when non-nil, enables hedged requests for idempotent
	// operations: if the primary attempt has not answered within the
	// policy's delay, a second attempt is launched on a different
	// session and the first well-formed reply wins. See HedgePolicy for
	// the delay derivation and the safety gate.
	Hedge *HedgePolicy

	// Metrics and Hooks are shared by all sessions.
	Metrics *Metrics
	Hooks   TraceHook

	// Tracer, when non-nil, is shared by all sessions and by the pool
	// itself: the pool owns each sampled call's root span (SpanPoolCall)
	// and passes its context down, so attempts that fail over to
	// another session stay in one trace — same trace ID, a fresh
	// call/attempt span per session tried — with failovers recorded as
	// cause-labeled events on the root.
	Tracer *Tracer
}

// HedgePolicy configures hedged requests: the tail-latency defense
// that trades bounded duplicate work for the chance to dodge one slow
// server, queue, or link. A hedge only ever launches for operations
// declared idempotent and not oneway, and only when the pool has a
// second session to launch it on — a duplicated non-idempotent request
// could execute twice, so the pool refuses to hedge it no matter what
// the policy says. The client→server cancel frame keeps the duplicate
// work bounded: as soon as one attempt wins, the loser's context is
// canceled and the cancel frame releases the server-side work.
type HedgePolicy struct {
	// Delay, when positive, is a fixed hedge delay. When zero the delay
	// is derived per call from the operation's observed latency
	// histogram at Percentile — the classic "hedge after the p95"
	// scheme, which bounds duplicate work to roughly (1-Percentile) of
	// calls once the histogram has warmed up.
	Delay time.Duration
	// Percentile is the latency quantile the derived delay tracks
	// (default 0.95). Ignored when Delay is set.
	Percentile float64
	// MinDelay floors the derived delay so a cold or very fast
	// histogram cannot hedge every call instantly (default 1ms).
	MinDelay time.Duration
}

// delayFor derives the hedge delay for one operation.
func (h *HedgePolicy) delayFor(metrics *Metrics, opName string) time.Duration {
	if h.Delay > 0 {
		return h.Delay
	}
	var d time.Duration
	if metrics != nil {
		pct := h.Percentile
		if pct <= 0 || pct > 1 {
			pct = 0.95
		}
		if snap := metrics.Op(opName).Latency.Snapshot(); snap.Count > 0 {
			d = snap.Quantile(pct)
		}
	}
	floor := h.MinDelay
	if floor <= 0 {
		floor = time.Millisecond
	}
	if d < floor {
		d = floor
	}
	return d
}

func (c *PoolConfig) size() int {
	if c.Size <= 0 {
		return 4
	}
	return c.Size
}

// ClientPool fans calls out over N multiplexed sessions. It exposes
// the same CallIdem/Call surface as Client, so generated stubs work
// against either.
type ClientPool struct {
	sessions []*Client
	policy   DispatchPolicy
	metrics  *Metrics
	tracer   *Tracer
	hedge    *HedgePolicy
	next     atomic.Uint32
	closed   atomic.Bool
}

// NewClientPool dials cfg.Size sessions and assembles the pool.
// Sessions dialed before an error are closed again; the error reports
// which session failed.
func NewClientPool(cfg PoolConfig) (*ClientPool, error) {
	if cfg.Dial == nil {
		return nil, errors.New("rt: PoolConfig.Dial is required")
	}
	if cfg.Proto == nil {
		return nil, errors.New("rt: PoolConfig.Proto is required")
	}
	n := cfg.size()
	p := &ClientPool{
		sessions: make([]*Client, 0, n),
		policy:   cfg.Policy,
		metrics:  cfg.Metrics,
		tracer:   cfg.Tracer,
		hedge:    cfg.Hedge,
	}
	dial := func(i int) (Conn, error) {
		conn, err := cfg.Dial(i)
		if err != nil {
			return nil, err
		}
		if cfg.Batch != nil {
			bc := *cfg.Batch
			if bc.Metrics == nil {
				bc.Metrics = cfg.Metrics
			}
			if bc.Tracer == nil {
				bc.Tracer = cfg.Tracer
			}
			conn = NewBatchConn(conn, bc)
		}
		return conn, nil
	}
	for i := 0; i < n; i++ {
		conn, err := dial(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("rt: pool session %d: %w", i, err)
		}
		c := NewClient(conn, cfg.Proto)
		c.Prog, c.Vers = cfg.Prog, cfg.Vers
		if cfg.ObjectKey != nil {
			c.ObjectKey = cfg.ObjectKey
		}
		c.Timeout = cfg.Timeout
		c.Retry = cfg.Retry
		c.Metrics = cfg.Metrics
		c.Hooks = cfg.Hooks
		c.Tracer = cfg.Tracer
		c.Shard = i
		if cfg.BreakerThreshold > 0 {
			c.Breaker = &Breaker{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
		}
		if cfg.Redial {
			i := i
			c.Redial = func() (Conn, error) { return dial(i) }
		}
		p.sessions = append(p.sessions, c)
	}
	return p, nil
}

// Len returns the number of sessions.
func (p *ClientPool) Len() int { return len(p.sessions) }

// Client returns the i-th session for inspection (tests, metrics).
func (p *ClientPool) Client(i int) *Client { return p.sessions[i] }

// Healthy counts sessions currently reporting Healthy.
func (p *ClientPool) Healthy() int {
	n := 0
	for _, c := range p.sessions {
		if c.Healthy() {
			n++
		}
	}
	return n
}

// Close closes every session. Idempotent; returns the first error.
func (p *ClientPool) Close() error {
	p.closed.Store(true)
	var first error
	for _, c := range p.sessions {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fnv1a hashes an operation name for HashByOp dispatch.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// pick returns the preferred session index for one call.
func (p *ClientPool) pick(opName string) int {
	if p.policy == HashByOp {
		return int(fnv1a(opName) % uint32(len(p.sessions)))
	}
	return int(p.next.Add(1)-1) % len(p.sessions)
}

// failoverSafe reports whether err is provably safe to re-send on
// another session: the breaker shed it unsent, the server rejected it
// before dispatch, or the retry machinery classified it retryable
// (which already encodes the idempotency rules). A bare transport
// error from a policy-free session is NOT safe — the request may have
// executed.
func failoverSafe(err error) bool {
	return errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrRetryable)
}

// CallIdem dispatches one invocation: pick a session by policy, skip
// unhealthy sessions (unless every session is unhealthy, in which case
// the preferred one gets the call anyway — its breaker probe or redial
// is the recovery path), and fail over to the next session when an
// attempt fails in a way that is provably safe to re-send. The call
// surface matches Client.CallIdem, so generated stubs take a
// *ClientPool wherever they took a *Client.
func (p *ClientPool) CallIdem(proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder)) (*Decoder, error) {
	return p.CallIdemCtx(nil, proc, opName, oneway, idempotent, marshal)
}

// CallIdemCtx is CallIdem with a caller context for trace continuation
// (see Client.CallCtx). When the pool's Tracer samples the call, the
// pool records the root span and threads its context into every
// session tried, so a failover continues the same trace.
func (p *ClientPool) CallIdemCtx(ctx context.Context, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder)) (*Decoder, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	var ct *callTrace
	if tracer := p.tracer; tracer != nil {
		if ct = startCallTrace(tracer, ctx, SpanPoolCall, opName, 0); ct != nil {
			ctx = ContextWithTrace(ctx, ct.tc)
		}
		// Unsampled pool failures are recorded by the session client's
		// own always-sample-on-error path; recording them here too
		// would double-count every failure.
	}
	var d *Decoder
	var err error
	if p.hedge != nil && idempotent && !oneway && len(p.sessions) > 1 {
		d, err = p.dispatchHedged(ctx, proc, opName, marshal, ct)
	} else {
		d, err = p.dispatch(ctx, proc, opName, oneway, idempotent, marshal, ct)
	}
	ct.finish(err)
	return d, err
}

// steer walks forward from start to the first session reporting
// Healthy; when every session is unhealthy it returns start unchanged
// (the preferred session's breaker probe or redial is the recovery
// path).
func (p *ClientPool) steer(start int) int {
	n := len(p.sessions)
	for off := 0; off < n; off++ {
		if p.sessions[(start+off)%n].Healthy() {
			return (start + off) % n
		}
	}
	return start
}

// dispatch runs the session-selection and failover loop for one call.
func (p *ClientPool) dispatch(ctx context.Context, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder), ct *callTrace) (*Decoder, error) {
	start := p.steer(p.pick(opName))
	return p.dispatchAt(ctx, start, -1, proc, opName, oneway, idempotent, marshal, ct)
}

// dispatchAt runs the failover loop from a chosen starting session,
// optionally excluding one index (a hedged call's other attempt owns
// it — the whole point of the hedge is hitting a *different* server
// queue). The first attempt goes to start even if unhealthy; failover
// candidates must report Healthy.
func (p *ClientPool) dispatchAt(ctx context.Context, start, skip int, proc uint32, opName string, oneway, idempotent bool, marshal func(*Encoder), ct *callTrace) (*Decoder, error) {
	n := len(p.sessions)
	var lastErr error
	tried := 0
	for off := 0; off < n; off++ {
		idx := (start + off) % n
		if idx == skip {
			continue
		}
		c := p.sessions[idx]
		if tried > 0 {
			if !c.Healthy() {
				continue
			}
			if p.metrics != nil {
				p.metrics.SessionFailovers.Add(1)
			}
			if ct != nil {
				ct.event("failover", fmt.Sprintf("to session %d after: %v", c.Shard, lastErr))
			}
		}
		tried++
		d, err := c.CallIdemCtx(ctx, proc, opName, oneway, idempotent, marshal)
		if err == nil {
			return d, nil
		}
		lastErr = err
		if !failoverSafe(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// hedgeResult is one attempt's outcome in a hedged dispatch.
type hedgeResult struct {
	d     *Decoder
	err   error
	hedge bool
}

// dispatchHedged races a primary attempt against a delayed hedge on a
// different session. The primary launches immediately; if it has not
// settled within the policy delay, the hedge launches with the other
// attempt's session excluded from its failover set. The first
// well-formed reply wins; the loser's context is canceled, which sends
// the cancel frame releasing its server-side work, and its decoder (if
// a reply arrives anyway) is collected and released off the hot path.
//
// Only called for idempotent, non-oneway operations on pools with at
// least two sessions — the gates live in CallIdemCtx and are pinned by
// test, because a hedged non-idempotent request could execute twice.
func (p *ClientPool) dispatchHedged(ctx context.Context, proc uint32, opName string, marshal func(*Encoder), ct *callTrace) (*Decoder, error) {
	n := len(p.sessions)
	start := p.steer(p.pick(opName))
	hedgeStart := -1
	for off := 1; off < n; off++ {
		if i := (start + off) % n; p.sessions[i].Healthy() {
			hedgeStart = i
			break
		}
	}
	if hedgeStart < 0 {
		// No second healthy session to hedge on: plain dispatch.
		return p.dispatchAt(ctx, start, -1, proc, opName, false, true, marshal, ct)
	}

	parent := ctx
	if parent == nil {
		parent = context.Background()
	}
	pctx, pcancel := context.WithCancel(parent)
	hctx, hcancel := context.WithCancel(parent)
	defer pcancel()
	defer hcancel()

	// The attempt goroutines get a nil callTrace: callTrace.event is
	// not concurrency-safe, and the loser can outlive this call. Hedge
	// lifecycle events are recorded here, by the coordinator.
	resCh := make(chan hedgeResult, 2)
	go func() {
		// Ownership passes through the result channel: the coordinator
		// hands the winner's decoder to the caller and releases losers.
		d, err := p.dispatchAt(pctx, start, hedgeStart, proc, opName, false, true, marshal, nil) //lint:allow releasecheck
		resCh <- hedgeResult{d: d, err: err}                                                     //lint:allow poolescape
	}()
	launched := 1

	delay := p.hedge.delayFor(p.metrics, opName)
	timer := time.NewTimer(delay)
	var first hedgeResult
	select {
	case first = <-resCh:
		timer.Stop()
	case <-timer.C:
		if p.metrics != nil {
			p.metrics.HedgedCalls.Add(1)
		}
		ct.event("hedge", fmt.Sprintf("launched on session %d after %v", hedgeStart, delay))
		go func() {
			d, err := p.dispatchAt(hctx, hedgeStart, start, proc, opName, false, true, marshal, nil) //lint:allow releasecheck
			resCh <- hedgeResult{d: d, err: err, hedge: true}                                        //lint:allow poolescape
		}()
		launched = 2
		first = <-resCh
	}

	collected := 1
	winner := first
	if winner.err != nil && launched == 2 {
		// The first result failed; the race is not over — the other
		// attempt may still produce the reply.
		second := <-resCh
		collected = 2
		if second.err == nil || !second.hedge {
			// Prefer the success; when both failed, report the
			// primary's error (the hedge's is usually context.Canceled
			// or a duplicate of the same failure).
			winner = second
		}
	}

	// Cancel the loser now: its awaiting attempt abandons the wait and
	// sends the cancel frame that releases the server-side work.
	pcancel()
	hcancel()
	if outstanding := launched - collected; outstanding > 0 {
		go func() {
			for i := 0; i < outstanding; i++ {
				if r := <-resCh; r.d != nil {
					// The loser's reply arrived anyway (duplicate
					// work): release the pooled decoder.
					r.d.Release()
				}
			}
		}()
	}
	if winner.err == nil && winner.hedge {
		if p.metrics != nil {
			p.metrics.HedgeWins.Add(1)
		}
		ct.event("hedge-win", fmt.Sprintf("hedge on session %d answered first", hedgeStart))
	}
	return winner.d, winner.err
}

// CallAsync issues one asynchronous invocation through the pool: the
// session is picked by policy with unhealthy sessions skipped, exactly
// as for CallIdem, and the returned promise resolves on that session.
// Failover happens at issue time only — a promise that fails resolves
// with the classified error rather than re-dispatching, because
// re-sending from Wait would reorder the request against promises
// issued after it. Callers that want cross-session retries check
// failoverSafe classes (ErrRetryable, ErrOverloaded, ErrBreakerOpen)
// on the settled error and re-issue.
func (p *ClientPool) CallAsync(proc uint32, opName string, idempotent bool, marshal func(*Encoder)) *Promise {
	n := len(p.sessions)
	start := p.pick(opName)
	for off := 0; off < n; off++ {
		if p.sessions[(start+off)%n].Healthy() {
			start = (start + off) % n
			break
		}
	}
	// A closed pool's sessions are closed clients: the promise settles
	// with ErrClosed.
	return p.sessions[start].CallAsync(proc, opName, idempotent, marshal)
}

// Call is CallIdem with idempotent=false, matching Client.Call.
func (p *ClientPool) Call(proc uint32, opName string, oneway bool, marshal func(*Encoder)) (*Decoder, error) {
	return p.CallIdemCtx(nil, proc, opName, oneway, false, marshal)
}

// SessionHealth is one session's health snapshot for the debug surface.
type SessionHealth struct {
	Index int `json:"index"`
	// Healthy mirrors Client.Healthy at snapshot time.
	Healthy bool `json:"healthy"`
	// Breaker is the session breaker's state name ("closed", "open",
	// "half-open"; "none" when the session has no breaker).
	Breaker string `json:"breaker"`
	// InFlight is the number of calls currently awaiting replies on the
	// session.
	InFlight int `json:"in_flight"`
	// Err is the session's poison error ("" while unpoisoned); a
	// redialing session clears it on the next call.
	Err string `json:"err,omitempty"`
}

// Health reports every session's current health, for the debug surface
// and operators; indices match Client(i).
func (p *ClientPool) Health() []SessionHealth {
	out := make([]SessionHealth, len(p.sessions))
	for i, c := range p.sessions {
		sh := SessionHealth{
			Index:   i,
			Healthy: c.Healthy(),
			Breaker: "none",
		}
		if b := c.Breaker; b != nil {
			sh.Breaker = b.State().String()
		}
		sh.InFlight = c.PendingCalls()
		if err := c.SessionErr(); err != nil {
			sh.Err = err.Error()
		}
		out[i] = sh
	}
	return out
}
