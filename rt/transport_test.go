package rt

import (
	"bytes"
	"sync"
	"testing"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	msgs := [][]byte{{1}, {2, 3}, make([]byte, 100_000)}
	go func() {
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("message mismatch (%d bytes)", len(want))
		}
	}
}

func TestPipeClose(t *testing.T) {
	a, b := Pipe()
	a.Close()
	if _, err := b.Recv(); err != ErrClosed {
		t.Errorf("recv after close = %v", err)
	}
	if err := b.Send([]byte{1}); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
}

func TestPipeSendCopiesBuffer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	buf := []byte{1, 2, 3}
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // the caller may reuse its buffer
	got, err := b.Recv()
	if err != nil || got[0] != 1 {
		t.Errorf("message aliased caller buffer: %v %v", got, err)
	}
}

func TestTCPRecordMarking(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer c.Close()
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				serverErr = err
				return
			}
		}
	}()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, n := range []int{0, 1, 5, 70_000, 1 << 20} {
		msg := bytes.Repeat([]byte{0xAB}, n)
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("echo of %d bytes mismatched", n)
		}
	}
	c.Close()
	wg.Wait()
	if serverErr != nil {
		t.Error(serverErr)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	server, addr, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		for {
			m, err := server.Recv()
			if err != nil {
				return
			}
			server.Send(m)
		}
	}()
	c, err := DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("datagram")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil || !bytes.Equal(got, msg) {
		t.Errorf("udp echo = %v, %v", got, err)
	}
	// Oversize datagrams are rejected client-side.
	if err := c.Send(make([]byte, 128<<10)); err == nil {
		t.Error("oversize datagram accepted")
	}
}

func TestClientServerConcurrentClients(t *testing.T) {
	s := NewServer(ONC{})
	s.Register(1, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		if !d.Ensure(4) {
			return d.Err()
		}
		v := d.U32BE()
		e.Grow(4)
		e.PutU32BE(v * 2)
		return nil
	})
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := DialTCP(l.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			c := NewClient(conn, ONC{})
			c.Prog, c.Vers = 1, 1
			defer c.Close()
			for i := 0; i < 50; i++ {
				v := uint32(g*1000 + i)
				d, err := c.Call(0, "dbl", false, func(e *Encoder) {
					e.Grow(4)
					e.PutU32BE(v)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if !d.Ensure(4) {
					t.Error(d.Err())
					return
				}
				if got := d.U32BE(); got != v*2 {
					t.Errorf("got %d, want %d", got, v*2)
					return
				}
				d.Release()
			}
		}(g)
	}
	wg.Wait()
}

func TestServerUnknownProgram(t *testing.T) {
	s := NewServer(ONC{})
	a, b := Pipe()
	defer a.Close()
	go s.ServeConn(b)
	c := NewClient(a, ONC{})
	c.Prog, c.Vers = 9, 9
	if _, err := c.Call(0, "x", false, func(e *Encoder) {}); err != ErrSystem {
		t.Errorf("unknown program err = %v", err)
	}
}
