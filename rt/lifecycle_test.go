package rt

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the call-lifecycle robustness layer: wire-propagated
// deadlines, client-driven cancellation, lameduck drain, the hedging
// safety gate, breaker half-open discipline, and duplicate suppression
// across a redial. Run with -race.

// startDrainableServer serves dispatch on one end of a pipe and returns
// the Server (so tests can Drain it) plus the client end. The server
// always carries Metrics so shed counters can be asserted.
func startDrainableServer(t *testing.T, dispatch Dispatch) (*Server, Conn) {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	s.Metrics = NewMetrics()
	s.Register(7, 1, dispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return s, clientEnd
}

// waitUntil polls cond up to the deadline; a miss fails the test.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlineTravelsToHandler: a ctx deadline on CallCtx arrives at
// the handler as ReqHeader.{HasDeadline,Deadline} with the remaining
// budget, and a deadline-less call arrives without one.
func TestDeadlineTravelsToHandler(t *testing.T) {
	type obs struct {
		has    bool
		budget time.Duration
	}
	seen := make(chan obs, 4)
	_, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		seen <- obs{h.HasDeadline, time.Until(h.Deadline)}
		return echoDispatch(h, d, e)
	})
	c := newEchoClient(conn)

	const budget = 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	d, err := c.CallCtx(ctx, 1, "double", false, func(e *Encoder) { e.PutU32BEC(21) })
	if err != nil {
		t.Fatalf("CallCtx: %v", err)
	}
	if !d.Ensure(4) || d.U32BE() != 42 {
		t.Fatalf("bad reply: %v", d.Err())
	}
	d.Release()
	o := <-seen
	if !o.has {
		t.Fatal("handler saw no deadline from a deadline-carrying ctx")
	}
	if o.budget <= 0 || o.budget > budget {
		t.Errorf("handler budget = %v, want in (0, %v]", o.budget, budget)
	}

	doubleCall(t, c, 5)
	if o := <-seen; o.has {
		t.Error("deadline-less call arrived with HasDeadline set")
	}
}

// recordingConn captures every frame Send transmits.
type recordingConn struct {
	Conn
	mu    sync.Mutex
	sends [][]byte
}

func (r *recordingConn) Send(msg []byte) error {
	r.mu.Lock()
	r.sends = append(r.sends, append([]byte(nil), msg...))
	r.mu.Unlock()
	return r.Conn.Send(msg)
}

func (r *recordingConn) take() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.sends
	r.sends = nil
	return out
}

// TestDeadlineWireBytes pins the compatibility contract: a ctx-less
// CallCtx emits frames byte-identical (modulo XID) to Call, and only a
// deadline-carrying ctx adds the 16-byte annotation prefix.
func TestDeadlineWireBytes(t *testing.T) {
	rec := &recordingConn{Conn: startEchoServer(t, 1)}
	c := newEchoClient(rec)
	marshal := func(e *Encoder) { e.PutU32BEC(21) }

	if d, err := c.Call(1, "double", false, marshal); err != nil {
		t.Fatal(err)
	} else {
		d.Release()
	}
	if d, err := c.CallCtx(context.Background(), 1, "double", false, marshal); err != nil {
		t.Fatal(err)
	} else {
		d.Release()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if d, err := c.CallCtx(ctx, 1, "double", false, marshal); err != nil {
		t.Fatal(err)
	} else {
		d.Release()
	}

	frames := rec.take()
	if len(frames) != 3 {
		t.Fatalf("captured %d frames, want 3", len(frames))
	}
	plain, ctxless, deadlined := frames[0], frames[1], frames[2]
	// The ONC XID is the leading u32; everything after it must match.
	if len(plain) != len(ctxless) || !bytes.Equal(plain[4:], ctxless[4:]) {
		t.Errorf("CallCtx(Background) changed the wire bytes: %x vs %x", plain, ctxless)
	}
	if _, _, has := SplitDeadline(ctxless); has {
		t.Error("ctx-less frame carries a deadline annotation")
	}
	budget, rest, has := SplitDeadline(deadlined)
	if !has {
		t.Fatal("deadline-carrying frame has no annotation")
	}
	if budget <= 0 || budget > time.Second {
		t.Errorf("wire budget = %v, want in (0, 1s]", budget)
	}
	if len(deadlined) != len(plain)+deadlineWireSize {
		t.Errorf("annotation cost %d bytes, want %d", len(deadlined)-len(plain), deadlineWireSize)
	}
	if !bytes.Equal(rest[4:], plain[4:]) {
		t.Error("annotated frame's inner message differs from the plain frame")
	}
}

// TestExpiredOnArrivalShed: a request whose wire budget is already zero
// is refused with ReplyExpired before dispatch — the handler never
// runs, and the shed is counted.
func TestExpiredOnArrivalShed(t *testing.T) {
	var ran atomic.Bool
	s, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		ran.Store(true)
		return echoDispatch(h, d, e)
	})

	var e Encoder
	writeDeadline(&e, 0)
	ONC{}.WriteRequest(&e, &ReqHeader{XID: 99, Prog: 7, Vers: 1, Proc: 1})
	e.PutU32BEC(21)
	if err := conn.Send(e.Bytes()); err != nil {
		t.Fatal(err)
	}
	msg := recvWithin(t, conn, 2*time.Second)
	var d Decoder
	d.Reset(msg)
	rh, err := ONC{}.ReadReply(&d)
	if err != nil {
		t.Fatalf("reply: %v", err)
	}
	if rh.XID != 99 || rh.Status != ReplyExpired {
		t.Errorf("reply xid=%d status=%d, want xid=99 status=ReplyExpired", rh.XID, rh.Status)
	}
	if ran.Load() {
		t.Error("handler ran for an expired-on-arrival request")
	}
	if got := s.Metrics.ExpiredRejects.Load(); got != 1 {
		t.Errorf("ExpiredRejects = %d, want 1", got)
	}
}

// TestClientMapsReplyExpired: a ReplyExpired status surfaces as
// ErrExpired, is terminal for the retry loop, and does not trip the
// breaker (the server refused cheaply; the session is healthy).
func TestClientMapsReplyExpired(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	t.Cleanup(func() { clientEnd.Close(); serverEnd.Close() })
	go func() {
		for {
			msg, err := serverEnd.Recv()
			if err != nil {
				return
			}
			_, msg, _ = SplitDeadline(msg)
			var d Decoder
			d.Reset(msg)
			h, err := ONC{}.ReadRequest(&d)
			if err != nil {
				return
			}
			var e Encoder
			ONC{}.WriteReply(&e, &RepHeader{XID: h.XID, Status: ReplyExpired})
			if serverEnd.Send(e.Bytes()) != nil {
				return
			}
		}
	}()

	c := newEchoClient(clientEnd)
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}
	c.Breaker = &Breaker{Threshold: 2, Cooldown: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.CallIdemCtx(ctx, 1, "double", false, true, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if !errors.Is(err, ErrNotRetryable) {
		t.Errorf("ErrExpired must be terminal (classified not-retryable), got %v", err)
	}
	if st := c.Breaker.State(); st != BreakerClosed {
		t.Errorf("breaker = %v after a zero-work refusal, want closed", st)
	}
}

// TestCtxCancelMidCall: canceling the caller's ctx returns immediately
// with context.Canceled, emits a cancel frame, and releases the
// handler's context server-side.
func TestCtxCancelMidCall(t *testing.T) {
	started := make(chan struct{}, 1)
	released := make(chan struct{}, 1)
	s, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		hctx := h.Context()
		started <- struct{}{}
		select {
		case <-hctx.Done():
			released <- struct{}{}
		case <-time.After(2 * time.Second):
		}
		return errors.New("abandoned")
	})
	c := newEchoClient(conn)
	c.Metrics = NewMetrics()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.CallCtx(ctx, 1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c.Metrics.CancelsSent.Load(); got != 1 {
		t.Errorf("CancelsSent = %d, want 1", got)
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("handler context was never canceled by the cancel frame")
	}
	waitUntil(t, 2*time.Second, func() bool { return s.Metrics.CanceledCalls.Load() >= 1 },
		"server never counted the released call")
}

// TestCtxDeadlineExceededMidWait: a ctx deadline shorter than the
// client's own Timeout surfaces as context.DeadlineExceeded, not
// ErrTimeout — the caller's budget expired, not the transport's.
func TestCtxDeadlineExceededMidWait(t *testing.T) {
	_, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		// Stall well past the ctx deadline (but inside the client's own
		// Timeout) so the reply cannot race the expiry.
		time.Sleep(300 * time.Millisecond)
		return echoDispatch(h, d, e)
	})
	c := newEchoClient(conn)
	c.Timeout = 5 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.CallCtx(ctx, 1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Error("ctx expiry must not be classified as the client's own timeout")
	}
}

// TestDrainHappyPath: with nothing in flight, Drain settles cleanly,
// the client observes exactly one GOAWAY, and the session reports
// unhealthy so pools migrate.
func TestDrainHappyPath(t *testing.T) {
	s, conn := startDrainableServer(t, echoDispatch)
	c := newEchoClient(conn)
	c.Metrics = NewMetrics()
	doubleCall(t, c, 7)

	if !s.Drain(time.Second) {
		t.Error("Drain with nothing in flight reported stragglers")
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	waitUntil(t, 2*time.Second, func() bool { return c.Metrics.GoAways.Load() == 1 },
		"client never observed the GOAWAY frame")
	waitUntil(t, 2*time.Second, func() bool { return !c.Healthy() },
		"drained session still reports healthy")
}

// TestDrainKillsStragglers: a handler that outlives the drain deadline
// is canceled at the deadline instead of holding the socket open, and
// Drain reports the unclean settle.
func TestDrainKillsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	released := make(chan struct{}, 1)
	s, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		hctx := h.Context()
		started <- struct{}{}
		select {
		case <-hctx.Done():
			released <- struct{}{}
		case <-time.After(5 * time.Second):
		}
		return nil
	})
	c := newEchoClient(conn)
	c.Timeout = 10 * time.Second
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
		errCh <- err
	}()
	<-started

	if s.Drain(50 * time.Millisecond) {
		t.Error("Drain with a blocked handler reported a clean settle")
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("drain deadline did not cancel the straggling handler")
	}
	// The canceled handler returns and its reply may race the socket
	// close; either outcome is fine — the invariants are that Drain
	// reported the overrun and the straggler was released promptly.
	<-errCh
}

// TestDrainUnblocksStreamSender pins the satellite regression: a
// credit-starved StreamSender blocked in Send must be released promptly
// by the drain deadline with ErrStreamCanceled — not left to hang until
// its own timeout while the socket closes under it.
func TestDrainUnblocksStreamSender(t *testing.T) {
	var sent atomic.Uint64
	senderErr := make(chan error, 1)
	s, conn := startDrainableServer(t, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		h.OpName = "count"
		h.OneWay = true
		sn := NewStreamSender(h)
		var ferr error
		for i := uint32(0); i < 100; i++ {
			if err := sn.Send(func(e *Encoder) { e.PutU32BEC(i) }); err != nil {
				ferr = err
				break
			}
			sent.Add(1)
		}
		senderErr <- ferr
		sn.Finish(ferr)
		return nil
	})
	c := newEchoClient(conn)
	// Window 1: the first chunk consumes all credit and the second Send
	// blocks; we never Recv, so no more credit ever arrives.
	if _, err := c.CallStream(5, "count", 1, func(e *Encoder) {}); err != nil {
		t.Fatalf("CallStream: %v", err)
	}
	waitUntil(t, 2*time.Second, func() bool { return sent.Load() == 1 },
		"sender never transmitted its first chunk")

	begin := time.Now()
	if s.Drain(50 * time.Millisecond) {
		t.Error("Drain with a blocked sender reported a clean settle")
	}
	select {
	case err := <-senderErr:
		if !errors.Is(err, ErrStreamCanceled) {
			t.Errorf("sender unblocked with %v, want ErrStreamCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain left the credit-starved sender blocked")
	}
	if waited := time.Since(begin); waited > time.Second {
		t.Errorf("sender took %v to unblock; the drain deadline should release it promptly", waited)
	}
}

// TestGoAwayMigratesPool: draining one server of a two-server pool
// marks its session unhealthy via GOAWAY and the pool carries all
// subsequent traffic on the survivor.
func TestGoAwayMigratesPool(t *testing.T) {
	servers := make([]*Server, 2)
	for i := range servers {
		s := NewServer(ONC{})
		s.Workers = 2
		s.Register(7, 1, echoDispatch)
		servers[i] = s
	}
	var serveWG sync.WaitGroup
	cm := NewMetrics()
	p, err := NewClientPool(PoolConfig{
		Size: 2,
		Dial: func(i int) (Conn, error) {
			clientEnd, serverEnd := Pipe()
			serveWG.Add(1)
			go func() { defer serveWG.Done(); servers[i].ServeConn(serverEnd) }()
			return clientEnd, nil
		},
		Proto: ONC{}, Prog: 7, Vers: 1,
		Timeout: 2 * time.Second,
		Metrics: cm,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close(); serveWG.Wait() })

	for i := 1; i <= 4; i++ {
		poolDouble(t, p, uint32(i))
	}
	if !servers[0].Drain(time.Second) {
		t.Error("idle server drained uncleanly")
	}
	waitUntil(t, 2*time.Second, func() bool { return p.Healthy() == 1 },
		"pool never marked the drained session unhealthy")
	if cm.GoAways.Load() == 0 {
		t.Error("no GOAWAY counted at the client")
	}
	// Every post-drain call lands on the survivor and succeeds: the
	// rolling restart lost nothing.
	for i := 1; i <= 20; i++ {
		poolDouble(t, p, uint32(i))
	}
}

// TestBreakerHalfOpenConcurrentProbes pins the half-open discipline:
// after the cooldown, exactly one of N concurrent callers is admitted
// as the probe; a probe success recloses, a probe failure reopens.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: 20 * time.Millisecond}
	if !b.allow() {
		t.Fatal("closed breaker refused a call")
	}
	b.failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", st)
	}
	if b.allow() {
		t.Error("open breaker admitted a call before the cooldown")
	}

	time.Sleep(30 * time.Millisecond)
	const probes = 16
	var admitted atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < probes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d of %d concurrent callers, want exactly 1 probe", got, probes)
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Errorf("state = %v while the probe is out, want half-open", st)
	}
	b.success()
	if st := b.State(); st != BreakerClosed {
		t.Errorf("state = %v after probe success, want closed", st)
	}

	// Round two: a failing probe goes straight back to open, and the
	// reopened breaker sheds immediately.
	b.failure()
	time.Sleep(30 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe admitted after the second cooldown")
	}
	b.failure()
	if st := b.State(); st != BreakerOpen {
		t.Errorf("state = %v after probe failure, want open", st)
	}
	if b.allow() {
		t.Error("breaker admitted a call immediately after a failed probe")
	}
}

// TestDupCacheAcrossRedial: duplicate suppression is scoped to one
// connection. Within a connection, a retransmitted XID is answered from
// the reply cache without re-dispatch; after a redial the same XID is a
// fresh call (XIDs are per-session) and must re-dispatch. Counters are
// asserted via Snapshot.Sub deltas.
func TestDupCacheAcrossRedial(t *testing.T) {
	var calls atomic.Int32
	s := NewServer(ONC{})
	s.Workers = 2
	s.DupWindow = 64
	s.Metrics = NewMetrics()
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		calls.Add(1)
		return echoDispatch(h, d, e)
	})
	dial := func() (Conn, chan struct{}) {
		clientEnd, serverEnd := Pipe()
		done := make(chan struct{})
		go func() { defer close(done); s.ServeConn(serverEnd) }()
		return clientEnd, done
	}
	req := oncRequest(42, 1, 21)

	conn1, done1 := dial()
	base := s.Metrics.Snapshot()
	if err := conn1.Send(req); err != nil {
		t.Fatal(err)
	}
	reply1 := recvWithin(t, conn1, 2*time.Second)
	if err := conn1.Send(req); err != nil {
		t.Fatal(err)
	}
	reply2 := recvWithin(t, conn1, 2*time.Second)
	if !bytes.Equal(reply1, reply2) {
		t.Error("cached resend differs from the original reply")
	}
	afterDup := s.Metrics.Snapshot()
	if delta := afterDup.Sub(base); delta.DroppedDupes != 1 {
		t.Errorf("DroppedDupes delta = %d within one conn, want 1", delta.DroppedDupes)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times for a retransmitted XID, want 1", got)
	}

	conn1.Close()
	<-done1
	conn2, done2 := dial()
	t.Cleanup(func() { conn2.Close(); <-done2 })
	if err := conn2.Send(req); err != nil {
		t.Fatal(err)
	}
	reply3 := recvWithin(t, conn2, 2*time.Second)
	if !bytes.Equal(reply1, reply3) {
		t.Error("re-dispatch on the new conn returned a different reply")
	}
	delta := s.Metrics.Snapshot().Sub(afterDup)
	if delta.DroppedDupes != 0 {
		t.Errorf("DroppedDupes delta = %d across a redial, want 0 (fresh cache)", delta.DroppedDupes)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("handler ran %d times after the redial, want 2 (same XID, new session)", got)
	}
}

// TestNonIdempotentNeverHedges pins the hedging safety gate: a pool
// with an aggressive hedge policy must refuse to hedge non-idempotent
// and oneway calls no matter how slow they run, while an idempotent
// call under the same latency does hedge.
func TestNonIdempotentNeverHedges(t *testing.T) {
	s := NewServer(ONC{})
	s.Workers = 8
	s.Register(7, 1, func(h *ReqHeader, d *Decoder, e *Encoder) error {
		time.Sleep(20 * time.Millisecond)
		return echoDispatch(h, d, e)
	})
	var serveWG sync.WaitGroup
	cm := NewMetrics()
	p, err := NewClientPool(PoolConfig{
		Size: 2,
		Dial: func(int) (Conn, error) {
			clientEnd, serverEnd := Pipe()
			serveWG.Add(1)
			go func() { defer serveWG.Done(); s.ServeConn(serverEnd) }()
			return clientEnd, nil
		},
		Proto: ONC{}, Prog: 7, Vers: 1,
		Timeout: 2 * time.Second,
		Hedge:   &HedgePolicy{Delay: 2 * time.Millisecond},
		Metrics: cm,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close(); serveWG.Wait() })

	// Non-idempotent: 20ms against a 2ms hedge delay, and still no hedge.
	for i := 1; i <= 4; i++ {
		d, err := p.CallIdem(1, "double", false, false, func(e *Encoder) { e.PutU32BEC(uint32(i)) })
		if err != nil {
			t.Fatalf("non-idempotent call: %v", err)
		}
		d.Release()
	}
	if got := cm.HedgedCalls.Load(); got != 0 {
		t.Fatalf("pool hedged %d non-idempotent calls; a duplicate could execute twice", got)
	}
	// Oneway: nothing waits, nothing to hedge.
	if _, err := p.CallIdem(3, "note", true, true, func(e *Encoder) {}); err != nil {
		t.Fatalf("oneway call: %v", err)
	}
	if got := cm.HedgedCalls.Load(); got != 0 {
		t.Fatalf("pool hedged %d oneway calls", got)
	}
	// Idempotent control under the same latency: the gate opens.
	for i := 1; i <= 4; i++ {
		d, err := p.CallIdem(1, "double", false, true, func(e *Encoder) { e.PutU32BEC(uint32(i)) })
		if err != nil {
			t.Fatalf("idempotent call: %v", err)
		}
		d.Release()
	}
	if cm.HedgedCalls.Load() == 0 {
		t.Error("idempotent control never hedged — the gate assertions above are vacuous")
	}
}
