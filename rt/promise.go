package rt

import (
	"context"
	"errors"
	"time"
)

// ErrPromiseSettled reports a second Wait on an already-settled
// promise. A promise is single-shot: the first Wait consumes the reply
// (and with it the pooled decoder's ownership), so a repeat Wait has
// nothing left to deliver.
var ErrPromiseSettled = errors.New("rt: promise already settled")

// Promise is one in-flight asynchronous invocation: CallAsync marshals
// and transmits the request before returning, and the promise holds
// the registered reply slot until Wait collects it from the session's
// XID multiplexer. Because transmission happens at issue time, a
// caller can hold any number of promises in flight on one session and
// the server pipeline overlaps them exactly like concurrent sync
// callers — without one goroutine per call.
//
// Resolution semantics match the sync path: Wait runs the same
// classification and retry loop a sync CallIdem runs after its first
// attempt, so promise errors satisfy errors.Is(ErrRetryable /
// ErrNotRetryable / ErrSystem / ErrOverloaded) identically. When the
// client traces, the issue-time attempt span parents the resolution:
// the span is recorded when Wait collects the reply, covering the full
// issue-to-resolve interval.
//
// A promise must be settled by exactly one Wait. Wait blocks; it is
// safe to call from a different goroutine than the issuer, but not
// from several at once.
type Promise struct {
	c          *Client
	ctx        context.Context
	proc       uint32
	opName     string
	idempotent bool
	marshal    func(*Encoder)

	// Issue-time observability state, finalized at Wait.
	ct           *callTrace
	attemptID    uint64
	attemptBegin time.Time
	begin        time.Time

	// First-attempt transmit state (the registered reply slot).
	s    *session
	ca   *call
	xid  uint32
	err  error
	sent bool

	// preempted marks a promise rejected before any attempt (breaker
	// open): the error is terminal and bypasses classification, exactly
	// as the sync path returns ErrBreakerOpen raw.
	preempted bool

	settled bool
}

// CallAsync begins one asynchronous invocation: the request is
// marshaled and handed to the transport before CallAsync returns, and
// the returned promise resolves it. CallAsync never blocks on the
// reply and never returns nil; issue-time failures (breaker open,
// poisoned session, send error) settle the promise so Wait reports
// them with sync-identical classification.
//
// Oneway operations have nothing to resolve — use Call. The per-call
// TraceEvent hook does not fire for async calls; metrics and trace
// spans cover them.
func (c *Client) CallAsync(proc uint32, opName string, idempotent bool, marshal func(*Encoder)) *Promise {
	return c.CallAsyncCtx(nil, proc, opName, idempotent, marshal)
}

// CallAsyncCtx is CallAsync with a caller context (see CallCtx): the
// trace on ctx is continued, a ctx deadline travels on the wire and
// bounds Wait, and ctx cancellation settles Wait early — sending the
// cancel frame that releases the server-side work. A nil ctx is
// allowed and means "no propagated trace, deadline, or cancellation".
func (c *Client) CallAsyncCtx(ctx context.Context, proc uint32, opName string, idempotent bool, marshal func(*Encoder)) *Promise {
	p := &Promise{c: c, ctx: ctx, proc: proc, opName: opName, idempotent: idempotent, marshal: marshal}
	metrics, tracer := c.Metrics, c.Tracer
	if metrics != nil || tracer != nil {
		p.begin = time.Now()
	}
	if tracer != nil {
		p.ct = startCallTrace(tracer, ctx, SpanClientCall, opName, c.Shard)
	}

	if b := c.Breaker; b != nil && !b.allow() {
		if metrics != nil {
			metrics.BreakerRejects.Add(1)
		}
		p.ct.event("breaker-reject", "call shed, breaker open")
		p.err = ErrBreakerOpen
		p.preempted = true
		return p
	}

	if p.ct != nil {
		p.attemptID = p.ct.tr.nextID()
		p.attemptBegin = time.Now()
	}
	p.s, p.ca, p.xid, p.err, p.sent = c.beginAttempt(ctx, proc, opName, false, marshal, nil, metrics, p.ct, p.attemptID)
	return p
}

// Wait blocks until the reply arrives (bounded by the client's Timeout
// per attempt), classifies failures, and — with a retry policy
// configured and the operation eligible — re-attempts synchronously
// inside Wait. On success the returned decoder is positioned at the
// reply payload and owned by the caller, who must release it with
// Decoder.Release after unmarshaling (generated promise wrappers do).
// Wait settles the promise; a second Wait returns ErrPromiseSettled.
func (p *Promise) Wait() (*Decoder, error) {
	if p.settled {
		return nil, ErrPromiseSettled
	}
	p.settled = true
	c := p.c
	metrics := c.Metrics

	if p.preempted {
		p.finish(nil, p.err, metrics)
		return nil, p.err
	}

	var d *Decoder
	err, sent := p.err, p.sent
	if err == nil {
		d, err = c.awaitAttempt(p.ctx, p.s, p.ca, p.xid, metrics)
		sent = true
	}
	if p.ct != nil {
		// The issue-time attempt span, recorded at resolution: its ID is
		// the one the wire annotation carried, so the server's dispatch
		// span parents to exactly this attempt.
		sp := &Span{
			Trace: p.ct.tc.TraceID, ID: p.attemptID, Parent: p.ct.tc.SpanID,
			Kind: SpanAttempt, Op: p.opName, XID: p.ct.lastXID, Sess: p.ct.shard,
			Start: p.attemptBegin, Dur: time.Since(p.attemptBegin), Sampled: true,
		}
		if err != nil {
			sp.Err = err.Error()
		}
		p.ct.tr.record(sp)
	}
	if c.Retry != nil || c.Redial != nil || c.Breaker != nil {
		d, err = c.settleAttempts(p.ctx, d, err, sent, p.proc, p.opName, false, p.idempotent, p.marshal, nil, metrics, p.ct)
	}
	p.finish(d, err, metrics)
	return d, err
}

// finish finalizes the promise's observability: per-op metrics (calls,
// errors, reply bytes, issue-to-resolve latency) and the client-call
// span.
func (p *Promise) finish(d *Decoder, err error, metrics *Metrics) {
	if metrics != nil {
		op := metrics.Op(p.opName)
		op.Calls.Add(1)
		if d != nil {
			op.RepBytes.Add(uint64(d.Size()))
		}
		if err != nil {
			op.Errors.Add(1)
		}
		op.Latency.Observe(time.Since(p.begin))
	}
	if tracer := p.c.Tracer; tracer != nil {
		if p.ct != nil {
			p.ct.finish(err)
		} else if err != nil {
			recordErrorSpan(tracer, SpanClientCall, p.opName, p.c.Shard, p.begin, err)
		}
	}
}
