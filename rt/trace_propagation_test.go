package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// End-to-end trace propagation: the annotation must survive every
// transport the runtime stacks under a call — fault injection, CRC
// framing, adaptive batching, pool failover — and the spans recorded on
// both ends must reassemble into one tree per call.

// startTracedServer runs an ONC echo server with the given tracer on a
// fresh pipe and returns the client end.
func startTracedServer(t *testing.T, tr *Tracer) Conn {
	t.Helper()
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	s.Tracer = tr
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })
	return clientEnd
}

// waitSpans polls until the ring holds at least n spans (server dispatch
// spans are recorded after the reply is sent, so the client may observe
// its reply first).
func waitSpans(t *testing.T, tr *Tracer, n int) []*Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if spans := tr.Spans(); len(spans) >= n {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring holds %d spans, want at least %d", len(tr.Spans()), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertCallTree checks one trace's spans form the canonical shape:
// a client call root, attempt children under it, and a server dispatch
// span parented to the exact attempt that carried the request.
func assertCallTree(t *testing.T, spans []*Span) {
	t.Helper()
	var root *Span
	byID := make(map[uint64]*Span)
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Parent == 0 {
			if root != nil {
				t.Fatalf("trace %s has two roots (%s and %s)", sp.Trace, root.Kind, sp.Kind)
			}
			root = sp
		}
	}
	if root == nil {
		t.Fatalf("trace has no root among %d spans", len(spans))
	}
	var dispatches int
	for _, sp := range spans {
		if sp == root {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("%s span %016x is an orphan (parent %016x not in trace)", sp.Kind, sp.ID, sp.Parent)
		}
		switch sp.Kind {
		case SpanAttempt:
			if parent.Kind != SpanClientCall {
				t.Errorf("attempt's parent is a %s span, want call", parent.Kind)
			}
		case SpanServerDispatch:
			dispatches++
			if parent.Kind != SpanAttempt {
				t.Errorf("dispatch's parent is a %s span, want attempt", parent.Kind)
			}
			if parent.XID != sp.XID {
				t.Errorf("dispatch XID %d != carrying attempt's XID %d", sp.XID, parent.XID)
			}
		}
	}
	if dispatches == 0 {
		t.Error("trace reached the server but recorded no dispatch span")
	}
}

func TestTracePropagatesThroughFaultAndChecksum(t *testing.T) {
	tr := &Tracer{SampleRate: 1, Seed: 11}
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 2
	s.Tracer = tr
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(WrapChecksum(serverEnd)) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	fc, err := NewFaultConn(clientEnd, FaultPlan{Seed: 1, Delay: 0.5, DelayMax: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := newEchoClient(WrapChecksum(fc))
	c.Tracer = tr

	const calls = 5
	for i := 0; i < calls; i++ {
		doubleCall(t, c, uint32(i+1))
	}
	// Each call records: call root + attempt + server dispatch.
	spans := waitSpans(t, tr, 3*calls)
	byTrace := SpansByTrace(spans)
	if len(byTrace) != calls {
		t.Fatalf("got %d traces, want %d", len(byTrace), calls)
	}
	for _, group := range byTrace {
		assertCallTree(t, group)
	}
}

func TestTracePropagatesThroughBatch(t *testing.T) {
	tr := &Tracer{SampleRate: 1, Seed: 13}
	inner := startTracedServer(t, tr)
	bc := NewBatchConn(inner, BatchConfig{MaxDelay: time.Millisecond, Tracer: tr})
	c := newEchoClient(bc)
	c.Tracer = tr
	defer bc.Close()

	// Concurrent callers give the coalescing writer something to pack:
	// the annotation rides inside each packed message, so the context
	// must survive batching and server-side unbatching.
	const calls = 8
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(uint32(i + 1)) })
			if err != nil {
				t.Error(err)
				return
			}
			d.Release()
		}(i)
	}
	wg.Wait()

	spans := waitSpans(t, tr, 3*calls)
	var traces int
	for _, group := range SpansByTrace(spans) {
		if group[0].Kind == SpanBatchFlush {
			continue // local batch-writer roots, not call trees
		}
		traces++
		assertCallTree(t, group)
	}
	if traces != calls {
		t.Fatalf("got %d call traces, want %d", traces, calls)
	}
}

func TestPoolFailoverKeepsTrace(t *testing.T) {
	tr := &Tracer{SampleRate: 1, Seed: 17}
	const size = 2
	kill := make([]func(), size)
	var killed [size]atomic.Bool
	dial := func(i int) (Conn, error) {
		if killed[i].Load() {
			return nil, errors.New("session's backend is gone")
		}
		clientEnd, serverEnd := Pipe()
		s := NewServer(ONC{})
		s.Workers = 2
		s.Tracer = tr
		s.Register(7, 1, echoDispatch)
		done := make(chan struct{})
		go func() { defer close(done); s.ServeConn(serverEnd) }()
		kill[i] = func() { killed[i].Store(true); serverEnd.Close() }
		t.Cleanup(func() { clientEnd.Close(); <-done })
		return clientEnd, nil
	}
	p, err := NewClientPool(PoolConfig{
		Size: size, Dial: dial, Proto: ONC{}, Prog: 7, Vers: 1,
		Retry:  &RetryPolicy{MaxAttempts: 1},
		Redial: true, // keeps the dead session in dispatch: failover happens at call time
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	poolDouble(t, p, 1) // warm
	kill[0]()
	time.Sleep(5 * time.Millisecond) // let session 0's reader observe the close

	// Round-robin prefers session 1 next, so call twice: one of the two
	// is dispatched to the dead session 0 and must fail over — inside
	// the same trace.
	poolDouble(t, p, 2)
	poolDouble(t, p, 3)

	var failedOver []*Span
	for _, group := range SpansByTrace(tr.Spans()) {
		root := group[0]
		if root.Kind != SpanPoolCall {
			continue
		}
		for _, ev := range root.Events {
			if ev.Cause == "failover" {
				failedOver = group
			}
		}
	}
	if failedOver == nil {
		t.Fatal("no trace with a failover event on its pool root")
	}

	// The failed-over trace holds ONE trace ID end to end: the pool
	// root, a call span per session tried (the dead one errored, the
	// survivor succeeded), and the survivor's server-side dispatch.
	var calls, dispatches, callErrs int
	for _, sp := range failedOver {
		switch sp.Kind {
		case SpanClientCall:
			calls++
			if sp.Err != "" {
				callErrs++
			}
		case SpanServerDispatch:
			dispatches++
		}
		if sp.Trace != failedOver[0].Trace {
			t.Fatal("span escaped its trace") // unreachable by construction; documents intent
		}
	}
	if calls < 2 || callErrs == 0 {
		t.Errorf("failed-over trace has %d call spans (%d failed), want ≥2 with ≥1 failure", calls, callErrs)
	}
	if dispatches == 0 {
		t.Error("failed-over trace never reached a server")
	}
}

// connErrHook records TraceConnError events.
type connErrHook struct {
	mu     sync.Mutex
	events []*TraceEvent
}

func (h *connErrHook) Trace(ev *TraceEvent) {
	if ev.Kind == TraceConnError {
		h.mu.Lock()
		h.events = append(h.events, ev)
		h.mu.Unlock()
	}
}
func (h *connErrHook) WantWire() bool { return false }

// TestClientPoisonReportsConnError pins the teardown-reporting fix: a
// connection poisoned under the client (peer gone mid-call) must count
// in Metrics.ConnErrors AND surface through the trace hook as a
// TraceConnError carrying the pool session index — previously these
// teardowns were only visible as the individual calls' failures.
func TestClientPoisonReportsConnError(t *testing.T) {
	clientEnd, serverEnd := Pipe()
	c := newEchoClient(clientEnd)
	c.Metrics = NewMetrics()
	hook := &connErrHook{}
	c.Hooks = hook
	c.Shard = 3
	defer clientEnd.Close()

	// Park a call, then kill the peer: the reply reader poisons the
	// session and drains the pending call.
	swallowed := make(chan struct{})
	go func() { serverEnd.Recv(); close(swallowed) }()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(1, "double", false, func(e *Encoder) { e.PutU32BEC(1) })
		errc <- err
	}()
	<-swallowed
	serverEnd.Close()
	if err := <-errc; err == nil {
		t.Fatal("call survived its peer's death")
	}
	if got := c.Metrics.ConnErrors.Load(); got == 0 {
		t.Error("poisoned connection not counted in ConnErrors")
	}
	hook.mu.Lock()
	defer hook.mu.Unlock()
	if len(hook.events) == 0 {
		t.Fatal("no TraceConnError event reached the hook")
	}
	if ev := hook.events[0]; ev.Sess != 3 || ev.Err == nil {
		t.Errorf("TraceConnError = sess %d err %v, want sess 3 with the teardown error", ev.Sess, ev.Err)
	}
}

func TestDupCachedResendRefusalSpan(t *testing.T) {
	tr := &Tracer{SampleRate: 1, Seed: 19}
	clientEnd, serverEnd := Pipe()
	s := NewServer(ONC{})
	s.Workers = 1
	s.DupWindow = 8
	s.Tracer = tr
	s.Register(7, 1, echoDispatch)
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(serverEnd) }()
	t.Cleanup(func() { clientEnd.Close(); <-done })

	// Hand-craft one annotated request and retransmit it after the
	// reply arrives: the server must answer the duplicate from its
	// reply cache and record a refusal span parented to the attempt
	// that carried the duplicate.
	tc, _ := tr.sampleRoot()
	var e Encoder
	writeTraceContext(&e, tc)
	ONC{}.WriteRequest(&e, &ReqHeader{XID: 77, Prog: 7, Vers: 1, Proc: 1, OpName: "double"})
	e.PutU32BEC(21)
	req := append([]byte(nil), e.Bytes()...)

	recvReply := func() []byte {
		reply, err := clientEnd.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if err := clientEnd.Send(req); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), recvReply()...)
	if err := clientEnd.Send(req); err != nil { // the retransmission
		t.Fatal(err)
	}
	second := recvReply()
	if string(first) != string(second) {
		t.Error("cached resend differs from the original reply")
	}

	var refusal *Span
	for _, sp := range waitSpans(t, tr, 2) {
		for _, ev := range sp.Events {
			if ev.Cause == "dup-cached-resend" {
				refusal = sp
			}
		}
	}
	if refusal == nil {
		t.Fatal("no dup-cached-resend refusal span recorded")
	}
	if refusal.Kind != SpanServerDispatch || refusal.Trace != tc.TraceID || refusal.Parent != tc.SpanID {
		t.Errorf("refusal span = kind %s trace %s parent %016x, want dispatch under the carrying attempt",
			refusal.Kind, refusal.Trace, refusal.Parent)
	}
}
