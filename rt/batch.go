// Adaptive call batching: the coalescing writer.
//
// The paper's throughput argument is about amortization: group the
// per-datum costs (bounds checks, copies) so each is paid once per
// chunk instead of once per field. At serving scale the analogous
// per-*call* costs are the frame header, the write syscall, and the
// integrity check — BatchConn amortizes those by packing every message
// that is pending at flush time into one batch frame (see SplitBatch in
// proto.go for the envelope).
//
// The batching is adaptive by construction rather than by timer: a
// dedicated writer goroutine drains the send queue, and whatever
// accumulated while the previous frame was being transmitted travels
// together in the next one. Under light load the queue never holds more
// than one message and every message ships alone, unwrapped, with zero
// added latency; under heavy load frames grow toward the configured
// caps automatically. An optional linger deadline (MaxDelay) trades a
// bounded latency increase for larger frames at moderate load, and
// oneway messages — which nothing waits on — are "lazy": they never cut
// a linger short, riding along with whichever later frame flushes.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BatchConfig tunes a BatchConn. The zero value is usable: pure
// idle-coalescing with default caps and no linger.
type BatchConfig struct {
	// MaxMessages caps how many messages one frame may carry (default
	// 64, bounded by MaxBatchMessages).
	MaxMessages int
	// MaxBytes caps the payload bytes one frame may carry (default
	// 32KB). A single message larger than the cap still ships, alone.
	MaxBytes int
	// MaxDelay, when positive, lets the writer linger after the first
	// pending eager message for up to this long to accumulate a larger
	// frame. Zero (the default) flushes the moment the queue drains:
	// batching then costs no latency at all and still wins whenever the
	// transport is slower than the callers.
	MaxDelay time.Duration
	// Queue bounds the pending-message backlog (default 256); Send
	// blocks when it is full, which is the fabric's client-side
	// backpressure.
	Queue int
	// Metrics, when non-nil, receives BatchedCalls, BatchFrames, and
	// the BatchFlush* reason counters.
	Metrics *Metrics
	// Tracer, when non-nil, records a SpanBatchFlush span for every
	// multi-message frame the writer cuts, with the flush reason as a
	// cause-labeled event. Single-message (unwrapped) sends are not
	// recorded — at low load batching must stay invisible in the ring
	// too. ClientPool defaults this to the pool's Tracer.
	Tracer *Tracer
}

func (c BatchConfig) maxMessages() int {
	n := c.MaxMessages
	if n <= 0 {
		n = 64
	}
	if n > MaxBatchMessages {
		n = MaxBatchMessages
	}
	return n
}

func (c BatchConfig) maxBytes() int {
	if c.MaxBytes <= 0 {
		return 32 << 10
	}
	return c.MaxBytes
}

func (c BatchConfig) queue() int {
	if c.Queue <= 0 {
		return 256
	}
	return c.Queue
}

// lazySender is the optional conn capability behind oneway-aware
// batching: the multiplexed client routes oneway requests through
// SendLazy when its conn provides it.
type lazySender interface {
	SendLazy(msg []byte) error
}

// batchMsg is one queued message; lazy marks oneway traffic that never
// cuts a linger short.
type batchMsg struct {
	buf  []byte
	lazy bool
}

// BatchConn wraps a Conn with adaptive call batching in both
// directions: Send coalesces queued messages into batch frames, and
// Recv transparently unpacks batch frames from the peer (so two
// BatchConns can face each other, or a batching client can face a plain
// server, whose frame reader also unpacks natively).
//
// Send keeps the Conn contract — safe for concurrent use, caller may
// reuse the buffer — by copying each message into the queue. Recv keeps
// the single-reader contract. Close tears down the writer; messages
// still queued are dropped, exactly as bytes buffered in a kernel
// socket are on close.
type BatchConn struct {
	inner Conn
	cfg   BatchConfig

	sendq  chan batchMsg
	done   chan struct{}
	once   sync.Once
	closed atomic.Bool

	// sendErr latches the writer's first transport failure; later Sends
	// return it instead of silently queueing onto a dead writer.
	sendErr atomic.Value // error

	// recvq holds unpacked messages from the last received batch frame
	// (single-reader: no lock needed).
	recvq [][]byte
}

// NewBatchConn wraps inner with a coalescing writer.
func NewBatchConn(inner Conn, cfg BatchConfig) *BatchConn {
	b := &BatchConn{
		inner: inner,
		cfg:   cfg,
		sendq: make(chan batchMsg, cfg.queue()),
		done:  make(chan struct{}),
	}
	go b.writer()
	return b
}

// Send queues one message for the coalescing writer. It blocks when the
// queue is full (backpressure) and fails once the conn is closed or the
// writer has hit a transport error.
func (b *BatchConn) Send(msg []byte) error { return b.send(msg, false) }

// SendLazy queues a message nothing waits on (oneway calls): it flushes
// with the caps and deadline like any other, but never cuts a linger
// short on queue drain. The multiplexed client uses it automatically
// for oneway operations when its conn is a BatchConn.
func (b *BatchConn) SendLazy(msg []byte) error { return b.send(msg, true) }

func (b *BatchConn) send(msg []byte, lazy bool) error {
	if b.closed.Load() {
		return ErrClosed
	}
	if e := b.sendErr.Load(); e != nil {
		return e.(error)
	}
	// The caller may reuse its buffer after Send returns: copy.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case b.sendq <- batchMsg{cp, lazy}:
		return nil
	case <-b.done:
		return ErrClosed
	}
}

// Recv returns the next message, unpacking batch frames from the peer.
func (b *BatchConn) Recv() ([]byte, error) {
	if len(b.recvq) > 0 {
		m := b.recvq[0]
		b.recvq = b.recvq[1:]
		return m, nil
	}
	for {
		msg, err := b.inner.Recv()
		if err != nil {
			return nil, err
		}
		parts, ok := SplitBatch(msg)
		if !ok {
			return msg, nil
		}
		if m := b.cfg.Metrics; m != nil {
			m.BatchedCalls.Add(uint64(len(parts)))
		}
		b.recvq = parts[1:]
		return parts[0], nil
	}
}

// Close stops the writer and closes the wrapped conn. Idempotent.
func (b *BatchConn) Close() error {
	b.closed.Store(true)
	b.once.Do(func() { close(b.done) })
	return b.inner.Close()
}

// flush reasons, indexing the metrics counters.
const (
	flushSize = iota
	flushIdle
	flushDeadline
	flushClose
)

// writer is the coalescing loop: block for the first pending message,
// drain whatever else is queued (lingering up to MaxDelay when
// configured and only lazy traffic is pending), and emit one frame —
// unwrapped when a single message is pending, an envelope otherwise.
func (b *BatchConn) writer() {
	maxN, maxB := b.cfg.maxMessages(), b.cfg.maxBytes()
	var pending []batchMsg
	var frame []byte // reused envelope buffer
	var timer *time.Timer
	for {
		var first batchMsg
		select {
		case first = <-b.sendq:
		case <-b.done:
			return
		}
		pending = append(pending[:0], first)
		bytes := len(first.buf)
		eager := !first.lazy
		reason := flushIdle

		var deadline <-chan time.Time
		if b.cfg.MaxDelay > 0 {
			if timer == nil {
				timer = time.NewTimer(b.cfg.MaxDelay)
			} else {
				timer.Reset(b.cfg.MaxDelay)
			}
			deadline = timer.C
		}
	accumulate:
		for len(pending) < maxN && bytes < maxB {
			select {
			case m := <-b.sendq:
				pending = append(pending, m)
				bytes += len(m.buf)
				eager = eager || !m.lazy
			default:
				// Queue drained. With no linger, or with an eager
				// message waiting on its reply, flush now; with only
				// lazy traffic pending, keep lingering for company.
				if deadline == nil || eager {
					break accumulate
				}
				select {
				case m := <-b.sendq:
					pending = append(pending, m)
					bytes += len(m.buf)
					eager = eager || !m.lazy
				case <-deadline:
					deadline = nil
					reason = flushDeadline
					break accumulate
				case <-b.done:
					b.emit(pending, frame, flushClose)
					return
				}
			}
		}
		if len(pending) >= maxN || bytes >= maxB {
			reason = flushSize
		}
		if deadline != nil && !timer.Stop() {
			<-timer.C
		}
		frame = b.emit(pending, frame, reason)
		for i := range pending {
			pending[i].buf = nil // release message copies to the GC
		}
	}
}

// flushCause names a flush reason for span events.
func flushCause(reason int) string {
	switch reason {
	case flushSize:
		return "flush-size"
	case flushIdle:
		return "flush-idle"
	case flushDeadline:
		return "flush-deadline"
	}
	return "flush-close"
}

// emit sends the pending messages as one frame and records the flush.
// It returns the (possibly grown) reusable envelope buffer.
func (b *BatchConn) emit(pending []batchMsg, frame []byte, reason int) []byte {
	var err error
	if len(pending) == 1 {
		// Single message: ship it unwrapped — at low load batching must
		// cost nothing, neither latency nor envelope bytes.
		err = b.inner.Send(pending[0].buf)
	} else {
		var begin time.Time
		tracer := b.cfg.Tracer
		if tracer != nil {
			begin = time.Now()
		}
		frame = appendBatchStart(frame[:0], len(pending))
		for _, m := range pending {
			frame = appendBatch(frame, m.buf)
		}
		err = b.inner.Send(frame)
		if tracer != nil {
			// Flush spans are local roots: one frame carries messages
			// from many traces, so none of their contexts fits.
			tc := tracer.localTrace()
			sp := &Span{
				Trace: tc.TraceID, ID: tc.SpanID, Kind: SpanBatchFlush,
				Op: "batch", Start: begin, Dur: time.Since(begin),
				Events: []SpanEvent{{
					Cause:  flushCause(reason),
					Detail: fmt.Sprintf("%d messages, %d bytes", len(pending), len(frame)),
				}},
			}
			if err != nil {
				sp.Err = err.Error()
			}
			tracer.record(sp)
		}
	}
	if m := b.cfg.Metrics; m != nil {
		switch reason {
		case flushSize:
			m.BatchFlushSize.Add(1)
		case flushIdle:
			m.BatchFlushIdle.Add(1)
		case flushDeadline:
			m.BatchFlushDeadline.Add(1)
		case flushClose:
			m.BatchFlushClose.Add(1)
		}
		if len(pending) > 1 {
			m.BatchFrames.Add(1)
			m.BatchedCalls.Add(uint64(len(pending)))
		}
	}
	if err != nil && b.sendErr.Load() == nil {
		b.sendErr.Store(err)
	}
	return frame
}
