// Fault injection: a Conn wrapper that misbehaves on purpose.
//
// The paper's evaluation (§4) assumes a well-behaved wire; the
// fault-tolerance layer cannot be tested against one. FaultConn wraps
// any Conn with a seeded, deterministic plan of failures — drops,
// delays, duplicates, reordering, bit-flip corruption, truncation, and
// mid-stream resets — so every failure mode the retry/redial/breaker
// machinery must survive is reproducible in tests and benchmarks: the
// same seed yields the same fault sequence.
//
// Faults model a lossy datagram link. Send-side faults damage requests
// in flight toward the peer; Recv-side faults damage replies on the way
// back. Stack a ChecksumConn *outside* the FaultConn (wrapping it) so
// corruption and truncation are detected and converted into drops, the
// way a real link layer discards damaged packets.
package rt

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan describes the misbehaviour of a FaultConn. Each rate is the
// probability, per message and per direction, of one fault; at most one
// fault applies to any message (the rates must sum to at most 1).
type FaultPlan struct {
	// Seed makes the fault sequence reproducible. The same seed and the
	// same message sequence produce the same faults.
	Seed int64

	// Drop silently discards the message.
	Drop float64
	// Duplicate delivers the message twice (a retransmitting link).
	Duplicate float64
	// Reorder holds the message back and delivers it after the next one
	// (UDP-style reordering; meaningless for in-order streams, which is
	// why the chaos harness runs over the datagram-like Pipe).
	Reorder float64
	// Corrupt flips one random bit somewhere in the message.
	Corrupt float64
	// Truncate cuts the message short at a random point (a partial
	// write / short datagram).
	Truncate float64
	// Reset closes the underlying connection mid-stream; the operation
	// and every later one fails with ErrClosed.
	Reset float64
	// Delay stalls the message for a random duration up to DelayMax
	// (default 1ms) without otherwise harming it.
	Delay float64
	// DelayMax bounds injected delays.
	DelayMax time.Duration
}

func (p *FaultPlan) total() float64 {
	return p.Drop + p.Duplicate + p.Reorder + p.Corrupt + p.Truncate + p.Reset + p.Delay
}

// FaultStats counts faults a FaultConn has injected, per kind. All
// fields are atomic.
type FaultStats struct {
	Messages  atomic.Uint64 // messages that passed through (both directions)
	Drops     atomic.Uint64
	Dups      atomic.Uint64
	Reorders  atomic.Uint64
	Corrupts  atomic.Uint64
	Truncates atomic.Uint64
	Resets    atomic.Uint64
	Delays    atomic.Uint64
}

// faultKind enumerates the single fault chosen for one message.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultDup
	faultReorder
	faultCorrupt
	faultTruncate
	faultReset
	faultDelay
)

// FaultConn wraps an inner Conn and injects faults per its plan.
// Send remains safe for concurrent use (the plan's random stream is
// mutex-guarded, which also keeps the fault sequence deterministic
// under a deterministic message order); Recv remains single-reader.
type FaultConn struct {
	inner Conn
	plan  FaultPlan
	Stats FaultStats

	mu sync.Mutex
	// Separate random streams per direction: the fault sequence each
	// direction sees depends only on that direction's message order,
	// never on how Send and Recv goroutines interleave — which is what
	// makes a whole chaos run reproducible from one seed.
	sendRng *rand.Rand
	recvRng *rand.Rand
	// heldSend is a Send-side reordered message awaiting the next Send.
	heldSend []byte
	// heldRecv is a Recv-side message (reordered dup or held reorder)
	// to deliver on the next Recv.
	heldRecv [][]byte
	closed   atomic.Bool
}

// NewFaultConn wraps inner with a seeded fault plan. It returns an
// error if the fault rates sum past 1 (they are probabilities of
// mutually exclusive outcomes).
func NewFaultConn(inner Conn, plan FaultPlan) (*FaultConn, error) {
	if t := plan.total(); t > 1 {
		return nil, fmt.Errorf("rt: fault rates sum to %.3f > 1", t)
	}
	if plan.DelayMax <= 0 {
		plan.DelayMax = time.Millisecond
	}
	return &FaultConn{
		inner:   inner,
		plan:    plan,
		sendRng: rand.New(rand.NewSource(plan.Seed)),
		recvRng: rand.New(rand.NewSource(plan.Seed + 1)),
	}, nil
}

// roll picks at most one fault for the next message in one direction.
func (f *FaultConn) roll(rng *rand.Rand) faultKind {
	// Caller holds f.mu.
	r := rng.Float64()
	for _, c := range [...]struct {
		rate float64
		kind faultKind
	}{
		{f.plan.Drop, faultDrop},
		{f.plan.Duplicate, faultDup},
		{f.plan.Reorder, faultReorder},
		{f.plan.Corrupt, faultCorrupt},
		{f.plan.Truncate, faultTruncate},
		{f.plan.Reset, faultReset},
		{f.plan.Delay, faultDelay},
	} {
		if r < c.rate {
			return c.kind
		}
		r -= c.rate
	}
	return faultNone
}

// damage applies an in-place fault to a private copy of msg. It needs
// two random numbers at most; the caller holds f.mu.
func (f *FaultConn) damage(rng *rand.Rand, kind faultKind, msg []byte) []byte {
	switch kind {
	case faultCorrupt:
		f.Stats.Corrupts.Add(1)
		if len(msg) > 0 {
			out := append([]byte(nil), msg...)
			bit := rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
			return out
		}
	case faultTruncate:
		f.Stats.Truncates.Add(1)
		if len(msg) > 0 {
			n := rng.Intn(len(msg))
			return append([]byte(nil), msg[:n]...)
		}
		return msg
	}
	return msg
}

// Send transmits msg toward the peer, subject to the plan.
func (f *FaultConn) Send(msg []byte) error {
	if f.closed.Load() {
		return ErrClosed
	}
	f.mu.Lock()
	f.Stats.Messages.Add(1)
	kind := f.roll(f.sendRng)
	var first, second []byte
	switch kind {
	case faultDrop:
		f.Stats.Drops.Add(1)
		// Release any held reorder partner so it is not stranded.
		first, f.heldSend = f.heldSend, nil
		f.mu.Unlock()
		if first != nil {
			return f.inner.Send(first)
		}
		return nil
	case faultDup:
		f.Stats.Dups.Add(1)
		first, second = msg, msg
	case faultReorder:
		if f.heldSend == nil {
			f.Stats.Reorders.Add(1)
			// Hold a private copy: the caller may reuse msg after
			// Send returns (clone, so no aliasing of the argument).
			f.heldSend = append([]byte(nil), msg...)
			f.mu.Unlock()
			return nil
		}
		first, second = msg, f.heldSend
		f.heldSend = nil
	case faultCorrupt, faultTruncate:
		first = f.damage(f.sendRng, kind, msg)
	case faultReset:
		f.Stats.Resets.Add(1)
		f.mu.Unlock()
		f.Close()
		return ErrClosed
	case faultDelay:
		f.Stats.Delays.Add(1)
		d := time.Duration(f.sendRng.Int63n(int64(f.plan.DelayMax)))
		f.mu.Unlock()
		time.Sleep(d)
		return f.inner.Send(msg)
	default:
		first = msg
	}
	// A previously held reordered message goes out after this one.
	if second == nil && f.heldSend != nil {
		second, f.heldSend = f.heldSend, nil
	}
	f.mu.Unlock()
	if err := f.inner.Send(first); err != nil {
		return err
	}
	if second != nil {
		return f.inner.Send(second)
	}
	return nil
}

// Recv returns the next message from the peer, subject to the plan.
func (f *FaultConn) Recv() ([]byte, error) {
	for {
		f.mu.Lock()
		if len(f.heldRecv) > 0 {
			msg := f.heldRecv[0]
			f.heldRecv = f.heldRecv[1:]
			f.mu.Unlock()
			return msg, nil
		}
		f.mu.Unlock()

		msg, err := f.inner.Recv()
		if err != nil {
			return nil, err
		}

		f.mu.Lock()
		f.Stats.Messages.Add(1)
		kind := f.roll(f.recvRng)
		switch kind {
		case faultDrop:
			f.Stats.Drops.Add(1)
			f.mu.Unlock()
			continue
		case faultDup:
			f.Stats.Dups.Add(1)
			f.heldRecv = append(f.heldRecv, msg)
			f.mu.Unlock()
			return msg, nil
		case faultReorder:
			// Deliver the *next* message first, queueing this one behind
			// it; if the link goes quiet instead the held message is
			// delivered anyway, so nothing is lost. The swapped-ahead
			// message is not rolled again (one fault per message pair).
			f.Stats.Reorders.Add(1)
			f.mu.Unlock()
			next, err := f.inner.Recv()
			if err != nil {
				return msg, nil
			}
			f.mu.Lock()
			f.heldRecv = append(f.heldRecv, msg)
			f.mu.Unlock()
			return next, nil
		case faultCorrupt, faultTruncate:
			msg = f.damage(f.recvRng, kind, msg)
			f.mu.Unlock()
			return msg, nil
		case faultReset:
			f.Stats.Resets.Add(1)
			f.mu.Unlock()
			f.Close()
			return nil, ErrClosed
		case faultDelay:
			f.Stats.Delays.Add(1)
			d := time.Duration(f.recvRng.Int63n(int64(f.plan.DelayMax)))
			f.mu.Unlock()
			time.Sleep(d)
			return msg, nil
		default:
			f.mu.Unlock()
			return msg, nil
		}
	}
}

// Close closes the underlying connection.
func (f *FaultConn) Close() error {
	f.closed.Store(true)
	return f.inner.Close()
}
