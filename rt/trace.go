// Trace hooks: a pluggable interceptor on Client.Call and
// Server.ServeConn. A nil hook costs one pointer test per call; a
// non-nil hook receives one TraceEvent per completed client call,
// server dispatch, dropped request, or failed connection, with phase
// timestamps and (behind the hook's verbosity) raw wire dumps.
package rt

import (
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceKind classifies a TraceEvent.
type TraceKind int

const (
	// TraceClientCall is one completed (or failed) client invocation.
	TraceClientCall TraceKind = iota
	// TraceServerDispatch is one request handled by a server.
	TraceServerDispatch
	// TraceBadHeader is a received request dropped because its header
	// did not parse; Err carries the parse failure.
	TraceBadHeader
	// TraceConnError is a connection that ended with a transport or
	// protocol error: a server connection that died mid-serve, or a
	// client session torn down by a receive failure, an unparseable
	// reply header, or a desynchronized stream (including teardowns
	// noticed during poison-drain and pool failover). Client-side
	// events carry the pool session index in Sess.
	TraceConnError
)

func (k TraceKind) String() string {
	switch k {
	case TraceClientCall:
		return "client-call"
	case TraceServerDispatch:
		return "server-dispatch"
	case TraceBadHeader:
		return "bad-header"
	case TraceConnError:
		return "conn-error"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent describes one traced unit of work. Events are delivered
// synchronously on the calling goroutine after the unit completes; the
// event and its byte slices must not be retained past the Trace call
// (copy what you keep).
type TraceEvent struct {
	Kind TraceKind
	// Op is the operation name; Proc the numeric operation code.
	Op   string
	Proc uint32
	// XID is the transaction id of the call or request.
	XID    uint32
	OneWay bool
	// Sess is the pool session/shard index the event's connection
	// belongs to (0 for direct clients and server-side events).
	Sess int
	// Begin is when the unit started (client: entering Call; server:
	// request received). Sent is the post-transmit timestamp (client:
	// request handed to the transport; server: reply handed to the
	// transport; zero for oneway/dropped units). End is when the unit
	// completed.
	Begin time.Time
	Sent  time.Time
	End   time.Time
	// ReqBytes / RepBytes are framed message sizes, headers included.
	ReqBytes int
	RepBytes int
	// Err is the unit's failure, nil on success.
	Err error
	// ReqWire / RepWire hold copies of the raw messages, populated
	// only when the hook's WantWire reports true.
	ReqWire []byte
	RepWire []byte
}

// Duration returns End - Begin.
func (ev *TraceEvent) Duration() time.Duration { return ev.End.Sub(ev.Begin) }

// TraceHook observes runtime events. Implementations must be safe for
// concurrent use: servers deliver events from every connection
// goroutine. Trace runs inline on the hot path — do slow work (I/O,
// aggregation) asynchronously if latency matters.
type TraceHook interface {
	// Trace receives one completed event.
	Trace(ev *TraceEvent)
	// WantWire reports whether the runtime should copy raw request and
	// reply bytes into events (a per-message allocation; keep it off
	// unless debugging).
	WantWire() bool
}

// TraceFunc adapts a plain function to a TraceHook without wire
// capture.
type TraceFunc func(ev *TraceEvent)

// Trace implements TraceHook.
func (f TraceFunc) Trace(ev *TraceEvent) { f(ev) }

// WantWire implements TraceHook; TraceFunc hooks never request dumps.
func (TraceFunc) WantWire() bool { return false }

// LogHook is a TraceHook that writes one line per event to W.
// Verbosity 0 logs only failures; 1 logs every event; 2 adds hex dumps
// of the raw messages. Lines are serialized under an internal mutex.
type LogHook struct {
	W io.Writer
	// Verbosity: 0 = errors only, 1 = all events, 2 = all events with
	// wire dumps.
	Verbosity int

	mu sync.Mutex
}

// WantWire implements TraceHook.
func (l *LogHook) WantWire() bool { return l.Verbosity >= 2 }

// Trace implements TraceHook.
func (l *LogHook) Trace(ev *TraceEvent) {
	if l.Verbosity < 1 && ev.Err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	op := ev.Op
	if op == "" {
		op = fmt.Sprintf("proc-%d", ev.Proc)
	}
	fmt.Fprintf(l.W, "%s %s xid=%d dur=%s req=%dB rep=%dB",
		ev.Kind, op, ev.XID, ev.Duration().Round(time.Microsecond), ev.ReqBytes, ev.RepBytes)
	if ev.OneWay {
		fmt.Fprint(l.W, " oneway")
	}
	if ev.Sess != 0 {
		fmt.Fprintf(l.W, " sess=%d", ev.Sess)
	}
	if ev.Err != nil {
		fmt.Fprintf(l.W, " err=%q", ev.Err.Error())
	}
	fmt.Fprintln(l.W)
	if l.Verbosity >= 2 {
		if len(ev.ReqWire) > 0 {
			fmt.Fprintf(l.W, "  request wire (%d bytes):\n%s", len(ev.ReqWire), indentDump(ev.ReqWire))
		}
		if len(ev.RepWire) > 0 {
			fmt.Fprintf(l.W, "  reply wire (%d bytes):\n%s", len(ev.RepWire), indentDump(ev.RepWire))
		}
	}
}

// maxWireDump bounds hex dumps so a megabyte payload cannot flood the
// log.
const maxWireDump = 256

func indentDump(p []byte) string {
	trunc := ""
	if len(p) > maxWireDump {
		trunc = fmt.Sprintf("  ... (%d bytes truncated)\n", len(p)-maxWireDump)
		p = p[:maxWireDump]
	}
	return hex.Dump(p) + trunc
}
