package rt

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Dispatch demultiplexes one request to a work function: it decodes the
// arguments from d, invokes the implementation, and (for two-way
// operations) encodes the reply payload into e. Returning ErrNoSuchOp
// produces a protocol-level system error reply.
type Dispatch func(h *ReqHeader, d *Decoder, e *Encoder) error

// ErrNoSuchOp reports an unknown operation to the dispatcher.
var ErrNoSuchOp = errors.New("rt: no such operation")

// Server owns registered dispatchers and serves connections. Generated
// Register* functions install one Dispatch per interface.
type Server struct {
	proto Protocol

	// Metrics, when non-nil, collects per-operation dispatch counters,
	// latency histograms, byte totals, and transport-level counters
	// (connections, dropped malformed headers, connection failures).
	// Hooks, when non-nil, receives one TraceEvent per dispatched
	// request, dropped request, and failed connection. Both must be
	// set before serving and not changed after; nil (the default)
	// costs one pointer test per connection loop iteration.
	Metrics *Metrics
	Hooks   TraceHook

	mu       sync.RWMutex
	byProg   map[uint64]Dispatch
	fallback Dispatch
}

// NewServer builds a server for one message protocol.
func NewServer(proto Protocol) *Server {
	return &Server{proto: proto, byProg: map[uint64]Dispatch{}}
}

// Register installs a dispatcher for an ONC (prog, vers) pair; prog=0,
// vers=0 installs the default dispatcher (GIOP/Mach/Fluke servers, which
// demultiplex purely on operation).
func (s *Server) Register(prog, vers uint32, d Dispatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prog == 0 && vers == 0 {
		s.fallback = d
		return
	}
	s.byProg[uint64(prog)<<32|uint64(vers)] = d
}

func (s *Server) lookup(h *ReqHeader) Dispatch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if d, ok := s.byProg[uint64(h.Prog)<<32|uint64(h.Vers)]; ok {
		return d
	}
	return s.fallback
}

// ServeConn answers requests on one connection until it closes.
func (s *Server) ServeConn(conn Conn) error {
	var enc Encoder
	var dec Decoder
	metrics, hooks := s.Metrics, s.Hooks
	observed := metrics != nil || hooks != nil
	if metrics != nil {
		metrics.Conns.Add(1)
		// Counting is gated (see Encoder.EnableStats): enable it only
		// when the counters feed an attached registry.
		enc.EnableStats(true)
		dec.EnableStats(true)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		var begin time.Time
		if observed {
			begin = time.Now()
		}
		dec.Reset(msg)
		h, err := s.proto.ReadRequest(&dec)
		if err != nil {
			// Malformed header: nothing identifies the caller, so no
			// reply is possible — count the drop instead of losing it
			// invisibly.
			if metrics != nil {
				metrics.BadHeaders.Add(1)
				metrics.addDec(dec.TakeStats())
			}
			if hooks != nil {
				hooks.Trace(&TraceEvent{
					Kind: TraceBadHeader, Begin: begin, End: time.Now(),
					ReqBytes: len(msg), Err: err,
				})
			}
			continue
		}
		dispatch := s.lookup(&h)
		enc.Reset()
		rh := RepHeader{XID: h.XID}
		var workErr error
		replied := false
		if dispatch == nil {
			workErr = ErrNoSuchOp
			rh.Status = ReplySystemError
			if !h.OneWay {
				s.proto.WriteReply(&enc, &rh)
				if err := conn.Send(enc.Bytes()); err != nil {
					s.finishRequest(metrics, hooks, &h, begin, len(msg), &enc, &dec, workErr, false)
					return err
				}
				replied = true
			}
		} else {
			// Reserve the reply header region, then let the dispatcher
			// append the payload; on failure rewrite a system-error reply.
			s.proto.WriteReply(&enc, &rh)
			workErr = dispatch(&h, &dec, &enc)
			if workErr != nil {
				enc.Reset()
				rh.Status = ReplySystemError
				s.proto.WriteReply(&enc, &rh)
			}
			if !h.OneWay {
				if err := conn.Send(enc.Bytes()); err != nil {
					s.finishRequest(metrics, hooks, &h, begin, len(msg), &enc, &dec, workErr, false)
					return err
				}
				replied = true
			}
		}
		if observed {
			s.finishRequest(metrics, hooks, &h, begin, len(msg), &enc, &dec, workErr, replied)
		}
	}
}

// finishRequest records one dispatched request into the attached
// metrics and trace hook. It runs only when observability is enabled.
func (s *Server) finishRequest(metrics *Metrics, hooks TraceHook, h *ReqHeader,
	begin time.Time, reqBytes int, enc *Encoder, dec *Decoder, workErr error, replied bool) {
	repBytes := 0
	if replied {
		repBytes = enc.Len()
	}
	if metrics != nil {
		op := metrics.Op(opLabel(h))
		op.Calls.Add(1)
		op.ReqBytes.Add(uint64(reqBytes))
		op.RepBytes.Add(uint64(repBytes))
		if workErr != nil {
			op.Errors.Add(1)
			metrics.DispatchErrors.Add(1)
		}
		if h.OneWay {
			metrics.Oneways.Add(1)
		}
		op.Latency.Observe(time.Since(begin))
		metrics.addEnc(enc.TakeStats())
		metrics.addDec(dec.TakeStats())
	}
	if hooks != nil {
		ev := &TraceEvent{
			Kind: TraceServerDispatch, Op: h.OpName, Proc: h.Proc, XID: h.XID,
			OneWay: h.OneWay, Begin: begin, End: time.Now(),
			ReqBytes: reqBytes, RepBytes: repBytes, Err: workErr,
		}
		if replied {
			ev.Sent = ev.End
		}
		if hooks.WantWire() && replied {
			ev.RepWire = append([]byte(nil), enc.Bytes()...)
		}
		hooks.Trace(ev)
	}
}

// opLabel names an operation for the metrics registry: the wire or
// stub-provided operation name when known (generated dispatchers label
// h.OpName as they demultiplex), the numeric procedure otherwise.
func opLabel(h *ReqHeader) string {
	if h.OpName != "" {
		return h.OpName
	}
	return "proc-" + utoa(h.Proc)
}

// utoa is strconv.FormatUint for small positive numbers without the
// import weight; operation codes are tiny.
func utoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Serve accepts connections until the listener closes, answering each on
// its own goroutine. Per-connection failures end only that connection;
// they are routed to the server's Metrics (ConnErrors) and trace hook
// rather than being silently discarded.
func (s *Server) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil {
				s.connError(err)
			}
		}()
	}
}

// connError surfaces a connection-level failure through the
// observability layer.
func (s *Server) connError(err error) {
	if s.Metrics != nil {
		s.Metrics.ConnErrors.Add(1)
	}
	if s.Hooks != nil {
		now := time.Now()
		s.Hooks.Trace(&TraceEvent{Kind: TraceConnError, Begin: now, End: now, Err: err})
	}
}
