package rt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dispatch demultiplexes one request to a work function: it decodes the
// arguments from d, invokes the implementation, and (for two-way
// operations) encodes the reply payload into e. Returning ErrNoSuchOp
// produces a protocol-level system error reply.
//
// With Workers > 1 a dispatcher runs concurrently with itself on the
// same connection; implementations must be safe for concurrent use
// (generated dispatchers are — each invocation works on its own
// decoder/encoder pair and only calls the user implementation).
type Dispatch func(h *ReqHeader, d *Decoder, e *Encoder) error

// ErrNoSuchOp reports an unknown operation to the dispatcher.
var ErrNoSuchOp = errors.New("rt: no such operation")

// Server owns registered dispatchers and serves connections. Generated
// Register* functions install one Dispatch per interface.
//
// Each connection runs a pipeline: a decode loop reads and parses
// request headers, feeding a bounded pool of worker goroutines that
// dispatch and write replies. Replies therefore may complete — and be
// sent — out of order; the multiplexed Client matches them by XID.
// Oneway requests occupy a worker but never a reply. When the
// connection closes, queued requests drain before ServeConn returns.
type Server struct {
	proto Protocol

	// Workers bounds the number of requests one connection processes
	// concurrently. The default (0) means 1: requests complete in
	// arrival order, the pre-pipelining behaviour (decode of the next
	// request still overlaps the current dispatch). Raise it to let
	// cheap requests overtake expensive ones on the same connection.
	// Set before serving.
	Workers int
	// Queue bounds the decoded-but-undispatched request backlog per
	// connection (backpressure: the decode loop stops reading when the
	// queue is full). The default (0) means 2×Workers. Set before
	// serving.
	Queue int

	// MaxMessage, when positive, bounds accepted request frames. On
	// transports that pre-validate frame lengths (TCP record marking),
	// the bound is applied *before* the fragment buffer is allocated,
	// so a hostile frame claiming a huge body cannot force an
	// oversized allocation; other transports drop oversized frames
	// after receipt and keep serving. Dropped frames count in
	// Metrics.Oversized. Set before serving.
	MaxMessage int
	// IdleTimeout, when positive, reaps connections whose read side
	// has been silent for the duration (deadline-capable transports
	// only: TCP and UDP). Reaped connections end cleanly — no error —
	// and count in Metrics.IdleReaped. Set before serving.
	IdleTimeout time.Duration
	// DupWindow, when positive, remembers that many recent request
	// XIDs per connection and suppresses duplicates (a retransmitting
	// client or duplicating datagram link): a duplicate whose reply is
	// already cached is answered by re-sending the cached reply
	// without re-dispatching; one still in progress is dropped (its
	// reply is coming). Both count in Metrics.DroppedDupes. Set
	// before serving.
	DupWindow int

	// Admission, when non-nil, bounds the server's weighted outstanding
	// work: requests that would exceed Admission.MaxLoad are answered
	// with ReplyOverloaded straight from the decode loop — no queue
	// slot, no worker — so overload degrades to shedding instead of
	// collapse. Rejections count in Metrics.AdmissionRejects. One
	// Admission may be shared across servers. Set before serving.
	Admission *Admission

	// Metrics, when non-nil, collects per-operation dispatch counters,
	// latency histograms, byte totals, transport-level counters
	// (connections, dropped malformed headers, connection failures),
	// and the QueueDepth gauge. Hooks, when non-nil, receives one
	// TraceEvent per dispatched request, dropped request, and failed
	// connection. Both must be set before serving and not changed
	// after; nil (the default) costs one pointer test per request.
	Metrics *Metrics
	Hooks   TraceHook

	// Tracer, when non-nil, records a SpanServerDispatch span for every
	// request that arrived carrying a sampled trace annotation, parented
	// to the client attempt span that sent it (span.go). Requests the
	// server refuses — admission rejects, duplicate suppressions — are
	// recorded as zero-work spans with cause-labeled events so the
	// client-side gap is explainable. Untraced and unsampled requests
	// cost one pointer test. Share one Tracer between client and server
	// in-process to land whole call trees in one ring. Set before
	// serving.
	Tracer *Tracer

	mu       sync.RWMutex
	byProg   map[uint64]Dispatch
	fallback Dispatch

	// draining, once set by Drain, sheds every newly arriving request
	// with ReplyOverloaded (failover-safe) while in-flight work
	// finishes; connMu/conns is the registry of live served
	// connections Drain coordinates (lifecycle.go).
	draining atomic.Bool
	connMu   sync.Mutex
	conns    map[*servingConn]struct{}
}

// NewServer builds a server for one message protocol.
func NewServer(proto Protocol) *Server {
	return &Server{proto: proto, byProg: map[uint64]Dispatch{}}
}

// Register installs a dispatcher for an ONC (prog, vers) pair; prog=0,
// vers=0 installs the default dispatcher (GIOP/Mach/Fluke servers, which
// demultiplex purely on operation).
func (s *Server) Register(prog, vers uint32, d Dispatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prog == 0 && vers == 0 {
		s.fallback = d
		return
	}
	s.byProg[uint64(prog)<<32|uint64(vers)] = d
}

func (s *Server) lookup(h *ReqHeader) Dispatch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if d, ok := s.byProg[uint64(h.Prog)<<32|uint64(h.Vers)]; ok {
		return d
	}
	return s.fallback
}

// deadlineConn is the optional transport capability behind
// Server.IdleTimeout (TCP and UDP connections implement it; in-process
// pipes have no read deadlines).
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// maxMessageConn is the optional transport capability behind
// Server.MaxMessage: transports that learn a frame's length before
// reading its body (TCP record marking) enforce the bound *before*
// allocating the body buffer.
type maxMessageConn interface {
	SetMaxMessage(n int)
}

// dupCache is a per-connection window of recent request XIDs for
// duplicate suppression (UDP retransmits, duplicating links). Entries
// progress from in-progress (reply nil) to answered (reply cached);
// eviction is FIFO by arrival.
type dupCache struct {
	mu     sync.Mutex
	window int
	seen   map[uint32][]byte // nil value: in progress or oneway
	order  []uint32          // ring of insertion order
	next   int
	full   bool
}

func newDupCache(window int) *dupCache {
	return &dupCache{
		window: window,
		seen:   make(map[uint32][]byte, window),
		order:  make([]uint32, window),
	}
}

// begin records a fresh XID, or reports a duplicate along with the
// cached reply (nil while the original is still in progress or was
// oneway).
func (dc *dupCache) begin(xid uint32) (dup bool, cached []byte) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if reply, ok := dc.seen[xid]; ok {
		return true, reply
	}
	if dc.full {
		delete(dc.seen, dc.order[dc.next])
	}
	dc.order[dc.next] = xid
	dc.seen[xid] = nil
	dc.next++
	if dc.next == dc.window {
		dc.next, dc.full = 0, true
	}
	return false, nil
}

// finish caches the sent reply for xid so a retransmitted request can
// be answered without re-dispatching. reply must be a private copy.
func (dc *dupCache) finish(xid uint32, reply []byte) {
	dc.mu.Lock()
	if _, ok := dc.seen[xid]; ok {
		dc.seen[xid] = reply
	}
	dc.mu.Unlock()
}

// srvJob is one decoded request travelling from the decode loop to a
// worker. Passed by value through the queue channel (no per-request
// allocation); the decoder is pooled and released by the worker.
type srvJob struct {
	h        ReqHeader
	dec      *Decoder
	reqBytes int
	begin    time.Time
	// admWeight is the admission cost acquired for this request; the
	// worker releases it when the request finishes.
	admWeight int64
}

// connFail records the first reply-write failure on a connection and
// closes it so the decode loop unblocks; ServeConn reports the error.
type connFail struct {
	mu  sync.Mutex
	err error
}

func (f *connFail) record(conn Conn, err error) {
	f.mu.Lock()
	first := f.err == nil
	if first {
		f.err = err
	}
	f.mu.Unlock()
	if first {
		conn.Close()
	}
}

func (f *connFail) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// ServeConn answers requests on one connection until it closes: the
// decode loop parses headers and feeds the worker pool; workers
// dispatch and send replies (possibly out of order). Remaining queued
// requests drain before ServeConn returns.
func (s *Server) ServeConn(conn Conn) error {
	metrics, hooks := s.Metrics, s.Hooks
	if metrics != nil {
		metrics.Conns.Add(1)
	}

	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	qlen := s.Queue
	if qlen < 1 {
		qlen = 2 * workers
	}
	if s.MaxMessage > 0 {
		if mc, ok := conn.(maxMessageConn); ok {
			// Push the bound below the framing layer: hostile length
			// fields are rejected before the body buffer exists.
			mc.SetMaxMessage(s.MaxMessage)
		}
	}
	var idle deadlineConn
	if s.IdleTimeout > 0 {
		idle, _ = conn.(deadlineConn)
	}
	var dups *dupCache
	if s.DupWindow > 0 {
		dups = newDupCache(s.DupWindow)
	}
	jobs := make(chan srvJob, qlen)
	fail := &connFail{}
	cs := newConnStreams(conn)
	sc := &servingConn{conn: conn, cs: cs, calls: newConnCalls()}
	s.connMu.Lock()
	if s.conns == nil {
		s.conns = make(map[*servingConn]struct{})
	}
	s.conns[sc] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, sc)
		s.connMu.Unlock()
	}()
	if s.draining.Load() {
		// A connection arriving mid-drain was not covered by Drain's
		// announcement sweep: tell its client immediately.
		sendStreamCtl(conn, frameGoAway, 0, 0)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			s.worker(conn, jobs, metrics, hooks, fail, dups, sc)
		}()
	}

	// Raw transports draw Recv buffers from the receive arena; their
	// whole-frame messages transfer to the request decoder for
	// recycling. Batch parts never do: they are sub-slices of a shared
	// frame, and recycling one would corrupt its siblings.
	connArena := ownsArena(conn)

	var loopErr error
	for {
		if idle != nil {
			idle.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		msg, err := conn.Recv()
		if err != nil {
			var ne net.Error
			if idle != nil && errors.As(err, &ne) && ne.Timeout() {
				// Silent past the idle deadline: reap the connection
				// cleanly rather than surfacing a transport error.
				if metrics != nil {
					metrics.IdleReaped.Add(1)
				}
				conn.Close()
				break
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrClosed) {
				loopErr = err
			}
			break
		}
		if s.MaxMessage > 0 && len(msg) > s.MaxMessage {
			// Transports without pre-validation (datagrams, pipes)
			// enforce the bound here, after receipt: drop and go on.
			if metrics != nil {
				metrics.Oversized.Add(1)
			}
			continue
		}
		if parts, ok := SplitBatch(msg); ok {
			// A batch frame from a coalescing client: unpack and admit
			// each packed request independently, in order.
			if metrics != nil {
				metrics.BatchedCalls.Add(uint64(len(parts)))
			}
			for _, part := range parts {
				s.acceptFrame(conn, part, nil, jobs, metrics, hooks, fail, dups, sc)
			}
			continue
		}
		var arena []byte
		if connArena {
			arena = msg
		}
		s.acceptFrame(conn, msg, arena, jobs, metrics, hooks, fail, dups, sc)
	}

	// Graceful drain: stop feeding, let the workers finish what is
	// queued, then surface any reply-write failure. Failing the stream
	// registry first unblocks any handler waiting on chunk credit —
	// no more grants are coming — so the drain cannot deadlock.
	close(jobs)
	cs.fail(ErrClosed)
	wg.Wait()
	if loopErr == nil {
		if serr := fail.get(); serr != nil && !errors.Is(serr, io.EOF) && !errors.Is(serr, ErrClosed) {
			loopErr = serr
		}
	}
	return loopErr
}

// acceptFrame processes one received request message — whether it
// arrived as its own transport frame or packed inside a batch frame:
// parse the header, suppress duplicates, pass admission control, and
// hand the request to the worker pool. arena, when non-nil, is the
// whole receive buffer backing msg, transferred to the request decoder
// so its release recycles (or pins) the buffer.
func (s *Server) acceptFrame(conn Conn, msg, arena []byte, jobs chan<- srvJob,
	metrics *Metrics, hooks TraceHook, fail *connFail, dups *dupCache, sc *servingConn) {
	cs := sc.cs
	if kind, sxid, arg, _, ok := SplitStream(msg); ok {
		// Upstream control frames from the client: stream credit and
		// cancellation applied to the stream ledger, call cancellation
		// applied to the in-flight call registry. Downstream kinds
		// arriving here are malformed noise — dropped.
		switch kind {
		case streamGrant, streamCancel:
			cs.control(kind, sxid, arg)
		case frameCallCancel:
			// The client stopped waiting on call sxid: cancel its
			// handler context if it is dispatching (counted here), or
			// remember the XID so the worker sheds it from the queue
			// (counted there).
			if sc.calls.cancel(sxid) && metrics != nil {
				metrics.CanceledCalls.Add(1)
			}
		}
		return
	}
	reqBytes := len(msg)
	// Strip the optional annotations. The deadline prefix is outermost;
	// both are stripped unconditionally — an annotating client must
	// interoperate with a server that has no Tracer attached — and
	// spans are recorded only when this server samples.
	budget, msg, hasDeadline := SplitDeadline(msg)
	tc, msg, traced := SplitTrace(msg)
	sampled := s.Tracer != nil && traced && tc.Sampled
	var begin time.Time
	if metrics != nil || hooks != nil || sampled {
		begin = time.Now()
	}
	d := getDecoder()
	if metrics != nil {
		d.EnableStats(true)
	}
	d.Reset(msg)
	// Bind the arena separately from the payload: SplitTrace may have
	// advanced msg past the annotation, but the recyclable unit is the
	// whole buffer the transport handed over.
	d.arena = arena
	h, err := s.proto.ReadRequest(d)
	if err != nil {
		// Malformed header: nothing identifies the caller, so no
		// reply is possible — count the drop instead of losing it
		// invisibly.
		if metrics != nil {
			metrics.BadHeaders.Add(1)
			metrics.addDec(d.TakeStats())
		}
		if hooks != nil {
			hooks.Trace(&TraceEvent{
				Kind: TraceBadHeader, Begin: begin, End: time.Now(),
				ReqBytes: reqBytes, Err: err,
			})
		}
		putDecoder(d)
		return
	}
	h.Trace, h.Traced = tc, traced
	h.streams = cs
	h.calls = sc.calls
	if hasDeadline {
		// The wire budget is relative; pin it to this host's clock once,
		// here, so the queue wait is charged against it too.
		if begin.IsZero() {
			begin = time.Now()
		}
		h.Deadline, h.HasDeadline = begin.Add(budget), true
		if budget <= 0 {
			// Already expired on arrival (writeDeadline clamps negative
			// budgets to zero): shed as a zero-work refusal, like an
			// admission reject — but terminally, since the client's
			// budget cannot revive. The handler never runs.
			s.shedFrame(conn, &h, d, metrics, fail, ReplyExpired)
			if metrics != nil {
				metrics.ExpiredRejects.Add(1)
			}
			if sampled {
				s.recordRefusalSpan(&h, begin, "expired", "expired-reject",
					"propagated deadline passed before dispatch")
			}
			return
		}
	}
	if s.draining.Load() {
		// Lameduck: GOAWAY is out (or about to be) and this request
		// arrived anyway. Shed it as retryable overload — it provably
		// did not execute, so the client's pool fails it over to a
		// healthy server and no call is lost to the drain.
		s.shedFrame(conn, &h, d, metrics, fail, ReplyOverloaded)
		if metrics != nil {
			metrics.DrainRejects.Add(1)
		}
		if sampled {
			s.recordRefusalSpan(&h, begin, "overloaded", "drain-reject",
				"shed during lameduck drain")
		}
		return
	}
	if dups != nil {
		if dup, cached := dups.begin(h.XID); dup {
			// A retransmitted request: re-send the cached reply if
			// the original already answered (the client's first
			// reply may have been lost); drop it if the original is
			// still in progress or was oneway. Never re-dispatch.
			if metrics != nil {
				metrics.DroppedDupes.Add(1)
				metrics.addDec(d.TakeStats())
			}
			putDecoder(d)
			if cached != nil {
				if err := conn.Send(cached); err != nil {
					fail.record(conn, err)
				}
				if sampled {
					s.recordRefusalSpan(&h, begin, "", "dup-cached-resend",
						"retransmitted request answered from the reply cache")
				}
			} else if sampled {
				s.recordRefusalSpan(&h, begin, "", "dup-inflight-drop",
					"retransmitted request dropped; original still in progress or oneway")
			}
			return
		}
	}
	var admWeight int64
	if adm := s.Admission; adm != nil {
		admWeight = adm.weight(&h)
		if !adm.tryAcquire(admWeight) {
			// The fast-reject path: no queue slot, no worker. The
			// overload reply is tiny and written straight from the
			// decode loop, so shedding stays cheap precisely when the
			// server is busiest. Oneway requests are simply dropped
			// (nothing waits for them).
			s.shedFrame(conn, &h, d, metrics, fail, ReplyOverloaded)
			if metrics != nil {
				metrics.AdmissionRejects.Add(1)
			}
			if sampled {
				s.recordRefusalSpan(&h, begin, "overloaded", "admission-reject",
					"shed before dispatch by admission control")
			}
			return
		}
	}
	if metrics != nil {
		metrics.QueueDepth.Add(1)
	}
	sc.inflight.Add(1)
	// Ownership handoff, not retention: the acceptor passes the
	// decoder to exactly one worker, which releases it after
	// dispatch.
	jobs <- srvJob{h: h, dec: d, reqBytes: reqBytes, begin: begin, admWeight: admWeight} //lint:allow poolescape
}

// shedFrame refuses one parsed request without dispatching it: the
// pooled decoder is released and a header-only status reply is written
// straight from the decode loop (oneways are dropped — nothing waits
// for them).
func (s *Server) shedFrame(conn Conn, h *ReqHeader, d *Decoder, metrics *Metrics, fail *connFail, status uint32) {
	if metrics != nil {
		metrics.addDec(d.TakeStats())
	}
	putDecoder(d)
	if h.OneWay {
		return
	}
	enc := getEncoder()
	s.proto.WriteReply(enc, &RepHeader{XID: h.XID, Status: status})
	if err := conn.Send(enc.Bytes()); err != nil {
		fail.record(conn, err)
	}
	putEncoder(enc)
}

// recordRefusalSpan records a zero-work SpanServerDispatch for a
// sampled request the server refused to dispatch (admission reject,
// duplicate suppression): the span carries no useful duration, but its
// cause-labeled event explains the client-side gap.
func (s *Server) recordRefusalSpan(h *ReqHeader, begin time.Time, errStr, cause, detail string) {
	tracer := s.Tracer
	sp := &Span{
		Trace: h.Trace.TraceID, ID: tracer.nextID(), Parent: h.Trace.SpanID,
		Kind: SpanServerDispatch, Op: opLabel(h), XID: h.XID,
		Start: begin, Dur: time.Since(begin), Sampled: true, Err: errStr,
		Events: []SpanEvent{{Offset: time.Since(begin), Cause: cause, Detail: detail}},
	}
	tracer.record(sp)
}

// worker dispatches queued requests until the queue closes. Each worker
// owns one reply encoder, reused across requests (the §3.1 buffer-reuse
// optimization, scoped per worker so replies never share a buffer).
// Reply writes go straight to the connection: Conn.Send is safe for
// concurrent writers, which serializes whole replies at the transport.
// safeDispatch invokes a dispatcher with panic recovery: a panicking
// handler is converted into a dispatch error (and so into an RPC
// system-error reply for the caller) instead of killing the worker —
// one poisoned request must not take down the pool, the connection, or
// the process.
func safeDispatch(dispatch Dispatch, h *ReqHeader, d *Decoder, e *Encoder) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rt: handler panic: %v", r)
			panicked = true
		}
	}()
	err = dispatch(h, d, e)
	return err, false
}

func (s *Server) worker(conn Conn, jobs <-chan srvJob, metrics *Metrics, hooks TraceHook, fail *connFail, dups *dupCache, sc *servingConn) {
	var enc Encoder
	if metrics != nil {
		enc.EnableStats(true)
	}
	observed := metrics != nil || hooks != nil
	// Both headers live outside the loop: their addresses escape into
	// interface calls (lookup, WriteReply, dispatch), so per-iteration
	// declarations would cost one heap allocation per request.
	var h ReqHeader
	var rh RepHeader
	for job := range jobs {
		if metrics != nil {
			metrics.QueueDepth.Add(-1)
		}
		h = job.h
		dec := job.dec
		// Pre-dispatch sheds: the queue wait may have outlived the
		// call. A client-canceled request gets no reply (nobody is
		// waiting); a drain-killed one is refused as retryable
		// overload; an expired one as a terminal zero-work refusal.
		// The handler never runs in any of these.
		canceled, killed := sc.calls.state(h.XID)
		sampled := s.Tracer != nil && h.Traced && h.Trace.Sampled
		if canceled || killed || (h.HasDeadline && !time.Now().Before(h.Deadline)) {
			switch {
			case canceled:
				if metrics != nil {
					metrics.CanceledCalls.Add(1)
					metrics.addDec(dec.TakeStats())
				}
				putDecoder(dec)
				if sampled {
					s.recordRefusalSpan(&h, job.begin, "canceled", "client-cancel",
						"shed before dispatch; the client abandoned the call")
				}
			case killed:
				s.shedFrame(conn, &h, dec, metrics, fail, ReplyOverloaded)
				if metrics != nil {
					metrics.DrainRejects.Add(1)
				}
				if sampled {
					s.recordRefusalSpan(&h, job.begin, "overloaded", "drain-kill",
						"shed from the queue at the drain deadline")
				}
			default:
				s.shedFrame(conn, &h, dec, metrics, fail, ReplyExpired)
				if metrics != nil {
					metrics.ExpiredRejects.Add(1)
				}
				if sampled {
					s.recordRefusalSpan(&h, job.begin, "expired", "expired-reject",
						"propagated deadline passed while queued")
				}
			}
			s.releaseJob(&job, sc)
			continue
		}
		dispatch := s.lookup(&h)
		enc.Reset()
		rh = RepHeader{XID: h.XID}
		var workErr error
		replied := false
		if dispatch == nil {
			workErr = ErrNoSuchOp
			rh.Status = ReplySystemError
			s.proto.WriteReply(&enc, &rh)
		} else {
			// Reserve the reply header region, then let the dispatcher
			// append the payload; on failure — including a recovered
			// handler panic — rewrite a system-error reply.
			s.proto.WriteReply(&enc, &rh)
			var panicked bool
			workErr, panicked = safeDispatch(dispatch, &h, dec, &enc)
			if panicked && metrics != nil {
				metrics.PanicsRecovered.Add(1)
			}
			if workErr != nil {
				enc.Reset()
				rh.Status = ReplySystemError
				s.proto.WriteReply(&enc, &rh)
			}
		}
		if !h.OneWay {
			// Vectored when the skeleton aliased reply payload segments
			// and the transport can scatter/gather.
			if err := sendEncoded(conn, &enc); err != nil {
				fail.record(conn, err)
			} else {
				replied = true
				if dups != nil {
					// Cache a private copy of the reply so a
					// retransmitted request re-sends it instead of
					// re-executing the operation.
					dups.finish(h.XID, append([]byte(nil), enc.Bytes()...))
				}
			}
		}
		// Release the handler context, if the dispatch registered one
		// via (*ReqHeader).Context (frees its deadline timer and
		// detaches it from the cancel registry).
		sc.calls.finish(h.XID)
		if observed {
			s.finishRequest(metrics, hooks, &h, job.begin, job.reqBytes, &enc, dec, workErr, replied)
		}
		if tracer := s.Tracer; tracer != nil && h.Traced && h.Trace.Sampled {
			// The dispatch span: parented to the client attempt span
			// whose annotation rode in on the request, so the two sides
			// of the call link up with no shared clocks or channels.
			sp := &Span{
				Trace: h.Trace.TraceID, ID: tracer.nextID(), Parent: h.Trace.SpanID,
				Kind: SpanServerDispatch, Op: opLabel(&h), XID: h.XID,
				Start: job.begin, Dur: time.Since(job.begin), Sampled: true,
			}
			if workErr != nil {
				sp.Err = workErr.Error()
			}
			tracer.record(sp)
		}
		putDecoder(dec)
		s.releaseJob(&job, sc)
	}
}

// releaseJob returns one finished (or shed) job's resources: its
// weighted admission capacity — which bounds work in the whole
// pipeline, not just the queue — and the connection's in-flight gauge
// that Drain watches.
func (s *Server) releaseJob(job *srvJob, sc *servingConn) {
	if job.admWeight > 0 {
		s.Admission.release(job.admWeight)
	}
	sc.inflight.Add(-1)
}

// finishRequest records one dispatched request into the attached
// metrics and trace hook. It runs only when observability is enabled.
func (s *Server) finishRequest(metrics *Metrics, hooks TraceHook, h *ReqHeader,
	begin time.Time, reqBytes int, enc *Encoder, dec *Decoder, workErr error, replied bool) {
	repBytes := 0
	if replied {
		repBytes = enc.Len()
	}
	if metrics != nil {
		op := metrics.Op(opLabel(h))
		op.Calls.Add(1)
		op.ReqBytes.Add(uint64(reqBytes))
		op.RepBytes.Add(uint64(repBytes))
		if workErr != nil {
			op.Errors.Add(1)
			metrics.DispatchErrors.Add(1)
		}
		if h.OneWay {
			metrics.Oneways.Add(1)
		}
		op.Latency.Observe(time.Since(begin))
		metrics.addEnc(enc.TakeStats())
		metrics.addDec(dec.TakeStats())
	}
	if hooks != nil {
		ev := &TraceEvent{
			Kind: TraceServerDispatch, Op: h.OpName, Proc: h.Proc, XID: h.XID,
			OneWay: h.OneWay, Begin: begin, End: time.Now(),
			ReqBytes: reqBytes, RepBytes: repBytes, Err: workErr,
		}
		if replied {
			ev.Sent = ev.End
		}
		if hooks.WantWire() && replied {
			ev.RepWire = append([]byte(nil), enc.Bytes()...)
		}
		hooks.Trace(ev)
	}
}

// opLabel names an operation for the metrics registry: the wire or
// stub-provided operation name when known (generated dispatchers label
// h.OpName as they demultiplex), the numeric procedure otherwise.
func opLabel(h *ReqHeader) string {
	if h.OpName != "" {
		return h.OpName
	}
	return "proc-" + utoa(h.Proc)
}

// utoa is strconv.FormatUint for small positive numbers without the
// import weight; operation codes are tiny.
func utoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Serve accepts connections until the listener closes, answering each on
// its own goroutine. Per-connection failures end only that connection;
// they are routed to the server's Metrics (ConnErrors) and trace hook
// rather than being silently discarded.
func (s *Server) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil {
				s.connError(err)
			}
		}()
	}
}

// connError surfaces a connection-level failure through the
// observability layer.
func (s *Server) connError(err error) {
	if s.Metrics != nil {
		s.Metrics.ConnErrors.Add(1)
	}
	if s.Hooks != nil {
		now := time.Now()
		s.Hooks.Trace(&TraceEvent{Kind: TraceConnError, Begin: now, End: now, Err: err})
	}
}
