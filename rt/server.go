package rt

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Dispatch demultiplexes one request to a work function: it decodes the
// arguments from d, invokes the implementation, and (for two-way
// operations) encodes the reply payload into e. Returning ErrNoSuchOp
// produces a protocol-level system error reply.
type Dispatch func(h *ReqHeader, d *Decoder, e *Encoder) error

// ErrNoSuchOp reports an unknown operation to the dispatcher.
var ErrNoSuchOp = errors.New("rt: no such operation")

// Server owns registered dispatchers and serves connections. Generated
// Register* functions install one Dispatch per interface.
type Server struct {
	proto Protocol

	mu       sync.RWMutex
	byProg   map[uint64]Dispatch
	fallback Dispatch
}

// NewServer builds a server for one message protocol.
func NewServer(proto Protocol) *Server {
	return &Server{proto: proto, byProg: map[uint64]Dispatch{}}
}

// Register installs a dispatcher for an ONC (prog, vers) pair; prog=0,
// vers=0 installs the default dispatcher (GIOP/Mach/Fluke servers, which
// demultiplex purely on operation).
func (s *Server) Register(prog, vers uint32, d Dispatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prog == 0 && vers == 0 {
		s.fallback = d
		return
	}
	s.byProg[uint64(prog)<<32|uint64(vers)] = d
}

func (s *Server) lookup(h *ReqHeader) Dispatch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if d, ok := s.byProg[uint64(h.Prog)<<32|uint64(h.Vers)]; ok {
		return d
	}
	return s.fallback
}

// ServeConn answers requests on one connection until it closes.
func (s *Server) ServeConn(conn Conn) error {
	var enc Encoder
	var dec Decoder
	for {
		msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		dec.Reset(msg)
		h, err := s.proto.ReadRequest(&dec)
		if err != nil {
			// Malformed header: nothing identifies the caller; drop.
			continue
		}
		dispatch := s.lookup(&h)
		enc.Reset()
		rh := RepHeader{XID: h.XID}
		if dispatch == nil {
			rh.Status = ReplySystemError
			if !h.OneWay {
				s.proto.WriteReply(&enc, &rh)
				if err := conn.Send(enc.Bytes()); err != nil {
					return err
				}
			}
			continue
		}
		// Reserve the reply header region, then let the dispatcher
		// append the payload; on failure rewrite a system-error reply.
		s.proto.WriteReply(&enc, &rh)
		if err := dispatch(&h, &dec, &enc); err != nil {
			enc.Reset()
			rh.Status = ReplySystemError
			s.proto.WriteReply(&enc, &rh)
		}
		if h.OneWay {
			continue
		}
		if err := conn.Send(enc.Bytes()); err != nil {
			return err
		}
	}
}

// Serve accepts connections until the listener closes, answering each on
// its own goroutine.
func (s *Server) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil {
				// Connection-level failures end only this conn.
				_ = fmt.Sprintf("conn error: %v", err)
			}
		}()
	}
}
