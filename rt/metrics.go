// Runtime observability: per-operation metrics for clients and servers.
//
// The paper's whole argument is quantitative — fewer buffer-space checks,
// fewer copies, cheaper dispatch — so the runtime exposes the numbers
// directly instead of leaving end-to-end wall clock as the only evidence.
// A *Metrics attached to a Client or Server collects, per operation:
// call and error counts, a lock-free log2 latency histogram, and
// request/reply byte totals; plus transport-level counters (dropped
// malformed headers, desynchronized replies, per-connection failures)
// and the Encoder/Decoder space-check counters that make the §3
// "grouped buffer management" optimization observable at runtime.
//
// Everything is sync/atomic: recording is lock-free and safe from any
// number of goroutines. A nil *Metrics disables collection entirely; the
// only cost on that path is one pointer test per call.
package rt

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NumLatencyBuckets is the fixed bucket count of latency histograms.
// Bucket i counts observations whose nanosecond value has bit length i
// (i.e. values in [2^(i-1), 2^i)), so the histogram spans 1ns to ~9min
// with no allocation and no locking.
const NumLatencyBuckets = 40

// Histogram is a lock-free fixed-bucket log2 histogram of durations.
// The zero value is ready to use.
type Histogram struct {
	buckets [NumLatencyBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
}

// bucketIndex returns the bucket for a nanosecond value.
func bucketIndex(ns uint64) int {
	i := bits.Len64(ns) // 0 only for ns == 0
	if i >= NumLatencyBuckets {
		i = NumLatencyBuckets - 1
	}
	return i
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram state at one (approximate) instant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64                    `json:"count"`
	SumNs   uint64                    `json:"sum_ns"`
	MaxNs   uint64                    `json:"max_ns"`
	Buckets [NumLatencyBuckets]uint64 `json:"buckets"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// exclusive upper edge of the bucket containing that rank. The log2
// buckets bound the error to a factor of two.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return time.Duration(s.MaxNs)
}

// Sub returns the histogram delta s - earlier: per-bucket counts,
// total count, and sum are subtracted, so quantiles computed on the
// result describe only the interval between the two snapshots. MaxNs
// keeps the later snapshot's value (the maximum is not recoverable per
// interval from a log2 histogram); treat it as "max since start".
// earlier must be a prior snapshot of the same histogram.
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: s.Count - earlier.Count,
		SumNs: s.SumNs - earlier.SumNs,
		MaxNs: s.MaxNs,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - earlier.Buckets[i]
	}
	return d
}

// OpStats aggregates one operation's counters. All fields are atomic;
// update and read from any goroutine.
type OpStats struct {
	// Calls counts invocations (client: issued calls; server:
	// dispatched requests, including failing ones).
	Calls atomic.Uint64
	// Errors counts failed invocations (client: Call returned an
	// error; server: the dispatcher returned an error).
	Errors atomic.Uint64
	// ReqBytes / RepBytes total the framed request and reply message
	// sizes, headers included.
	ReqBytes atomic.Uint64
	RepBytes atomic.Uint64
	// Latency is the per-call duration distribution (client: whole
	// round trip; server: decode + dispatch + reply encode/send).
	Latency Histogram
}

// Metrics is a registry of per-operation and transport-level counters,
// attachable to a Client or Server. The zero value is ready to use; a
// nil *Metrics disables collection (the runtime's fast path is a single
// nil test). Share one Metrics across clients and servers freely — all
// updates are atomic.
type Metrics struct {
	ops sync.Map // string -> *OpStats

	// Conns counts connections served (ServeConn entries).
	Conns atomic.Uint64
	// ConnErrors counts connections that ended with a transport or
	// protocol error (previously swallowed silently by Serve).
	ConnErrors atomic.Uint64
	// BadHeaders counts received requests dropped because their header
	// did not parse. The requests are unanswerable (nothing identifies
	// the caller), so this counter is the only trace they leave.
	BadHeaders atomic.Uint64
	// BadXIDs counts replies whose transaction id matched no call in
	// flight: the connection is desynchronized (see ErrBadXID).
	BadXIDs atomic.Uint64
	// StaleReplies counts replies that arrived for calls which had
	// already timed out (per-call deadline); they are dropped without
	// poisoning the connection.
	StaleReplies atomic.Uint64
	// DispatchErrors counts server dispatch failures (unknown
	// operation, malformed arguments, work-function errors).
	DispatchErrors atomic.Uint64
	// Oneways counts invocations that did not expect a reply.
	Oneways atomic.Uint64

	// Fault-tolerance counters (client side). Retries counts
	// re-attempts under a RetryPolicy (attempts beyond each call's
	// first); Reconnects counts sessions transparently redialed after
	// a poisoned connection; BreakerOpen counts closed/half-open →
	// open transitions of the circuit breaker; BreakerRejects counts
	// calls shed with ErrBreakerOpen.
	Retries        atomic.Uint64
	Reconnects     atomic.Uint64
	BreakerOpen    atomic.Uint64
	BreakerRejects atomic.Uint64

	// Fault-tolerance counters (server side). PanicsRecovered counts
	// handler panics converted into RPC system-error replies;
	// DroppedDupes counts duplicate requests suppressed by the
	// DupWindow cache (re-answered from cache or dropped);
	// IdleReaped counts connections closed by the IdleTimeout;
	// Oversized counts frames dropped for exceeding MaxMessage.
	PanicsRecovered atomic.Uint64
	DroppedDupes    atomic.Uint64
	IdleReaped      atomic.Uint64
	Oversized       atomic.Uint64

	// Scale-out fabric counters. BatchedCalls counts messages that
	// travelled inside multi-message batch frames (incremented on the
	// packing side by BatchConn's writer and on the unpacking side by
	// BatchConn.Recv or the server's frame reader — with the usual
	// split client/server registries each side sees its own traffic).
	// BatchFrames counts the multi-message frames themselves, so
	// BatchedCalls/BatchFrames is the achieved batching factor. The
	// BatchFlush* counters record why the coalescing writer cut each
	// frame: the size/count caps, the queue running dry, the linger
	// deadline, or close. AdmissionRejects counts requests shed by
	// server-side admission control (ReplyOverloaded) before dispatch.
	// SessionFailovers counts calls a ClientPool moved off an unhealthy
	// or failing session onto another.
	BatchedCalls       atomic.Uint64
	BatchFrames        atomic.Uint64
	BatchFlushSize     atomic.Uint64
	BatchFlushIdle     atomic.Uint64
	BatchFlushDeadline atomic.Uint64
	BatchFlushClose    atomic.Uint64
	AdmissionRejects   atomic.Uint64
	SessionFailovers   atomic.Uint64

	// Call-lifecycle counters (client side). HedgedCalls counts pool
	// calls that launched a hedge attempt (the duplicate-work bound:
	// HedgedCalls/op Calls is the hedge rate); HedgeWins counts hedged
	// calls the hedge attempt won; CancelsSent counts cancel frames
	// sent for abandoned calls (ctx cancellation, timeouts, losing
	// hedge attempts); GoAways counts GOAWAY drain announcements
	// received from servers.
	HedgedCalls atomic.Uint64
	HedgeWins   atomic.Uint64
	CancelsSent atomic.Uint64
	GoAways     atomic.Uint64

	// Call-lifecycle counters (server side). ExpiredRejects counts
	// requests shed with ReplyExpired because their propagated deadline
	// had passed before dispatch (the handler never ran);
	// CanceledCalls counts in-flight calls released by a client cancel
	// frame (shed before dispatch, or handler context canceled);
	// DrainRejects counts requests shed because they arrived while the
	// server was draining (GOAWAY sent, socket about to close).
	ExpiredRejects atomic.Uint64
	CanceledCalls  atomic.Uint64
	DrainRejects   atomic.Uint64

	// InFlight is a gauge of client calls issued and not yet completed
	// (awaiting their reply, drain, or deadline).
	InFlight atomic.Int64
	// QueueDepth is a gauge of server requests decoded but not yet
	// picked up by a dispatch worker, summed over connections.
	QueueDepth atomic.Int64

	// Encoder/Decoder space-check counters, folded in per call (client)
	// or per request (server). EncGrowChecks counts Encoder.Grow calls
	// (the paper's ensure-space checks on the marshal side: optimized
	// stubs emit one per message segment, naive stubs one per datum);
	// EncGrowAllocs counts the subset that had to reallocate the
	// buffer. DecEnsureChecks counts Decoder.Ensure calls;
	// DecFailures counts decode failures (truncation, bounds, bad
	// constants).
	EncGrowChecks   atomic.Uint64
	EncGrowAllocs   atomic.Uint64
	DecEnsureChecks atomic.Uint64
	DecFailures     atomic.Uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Op returns the counter block for an operation name, creating it on
// first use. Hot-path callers hit the sync.Map read path (lock-free
// after the first call per op).
func (m *Metrics) Op(name string) *OpStats {
	if v, ok := m.ops.Load(name); ok {
		return v.(*OpStats)
	}
	v, _ := m.ops.LoadOrStore(name, &OpStats{})
	return v.(*OpStats)
}

// addEnc folds drained encoder counters into the registry.
func (m *Metrics) addEnc(s EncStats) {
	if s.GrowChecks != 0 {
		m.EncGrowChecks.Add(s.GrowChecks)
	}
	if s.GrowAllocs != 0 {
		m.EncGrowAllocs.Add(s.GrowAllocs)
	}
}

// addDec folds drained decoder counters into the registry.
func (m *Metrics) addDec(s DecStats) {
	if s.EnsureChecks != 0 {
		m.DecEnsureChecks.Add(s.EnsureChecks)
	}
	if s.Failures != 0 {
		m.DecFailures.Add(s.Failures)
	}
}

// OpSnapshot is a point-in-time copy of one operation's counters, with
// convenience quantiles precomputed from the latency histogram.
type OpSnapshot struct {
	Op       string            `json:"op"`
	Calls    uint64            `json:"calls"`
	Errors   uint64            `json:"errors"`
	ReqBytes uint64            `json:"req_bytes"`
	RepBytes uint64            `json:"rep_bytes"`
	Latency  HistogramSnapshot `json:"latency"`
	MeanNs   uint64            `json:"mean_ns"`
	P50Ns    uint64            `json:"p50_ns"`
	P90Ns    uint64            `json:"p90_ns"`
	P99Ns    uint64            `json:"p99_ns"`
	MaxNs    uint64            `json:"max_ns"`
}

// Snapshot is a stable, point-in-time copy of a Metrics registry,
// suitable for JSON encoding. Ops are sorted by name.
type Snapshot struct {
	Ops []OpSnapshot `json:"ops"`

	Conns          uint64 `json:"conns"`
	ConnErrors     uint64 `json:"conn_errors"`
	BadHeaders     uint64 `json:"bad_headers"`
	BadXIDs        uint64 `json:"bad_xids"`
	StaleReplies   uint64 `json:"stale_replies"`
	DispatchErrors uint64 `json:"dispatch_errors"`
	Oneways        uint64 `json:"oneways"`
	InFlight       int64  `json:"in_flight"`
	QueueDepth     int64  `json:"queue_depth"`

	Retries         uint64 `json:"retries"`
	Reconnects      uint64 `json:"reconnects"`
	BreakerOpen     uint64 `json:"breaker_open"`
	BreakerRejects  uint64 `json:"breaker_rejects"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	DroppedDupes    uint64 `json:"dropped_dupes"`
	IdleReaped      uint64 `json:"idle_reaped"`
	Oversized       uint64 `json:"oversized"`

	BatchedCalls       uint64 `json:"batched_calls"`
	BatchFrames        uint64 `json:"batch_frames"`
	BatchFlushSize     uint64 `json:"batch_flush_size"`
	BatchFlushIdle     uint64 `json:"batch_flush_idle"`
	BatchFlushDeadline uint64 `json:"batch_flush_deadline"`
	BatchFlushClose    uint64 `json:"batch_flush_close"`
	AdmissionRejects   uint64 `json:"admission_rejects"`
	SessionFailovers   uint64 `json:"session_failovers"`

	HedgedCalls    uint64 `json:"hedged_calls"`
	HedgeWins      uint64 `json:"hedge_wins"`
	CancelsSent    uint64 `json:"cancels_sent"`
	GoAways        uint64 `json:"goaways"`
	ExpiredRejects uint64 `json:"expired_rejects"`
	CanceledCalls  uint64 `json:"canceled_calls"`
	DrainRejects   uint64 `json:"drain_rejects"`

	EncGrowChecks   uint64 `json:"enc_grow_checks"`
	EncGrowAllocs   uint64 `json:"enc_grow_allocs"`
	DecEnsureChecks uint64 `json:"dec_ensure_checks"`
	DecFailures     uint64 `json:"dec_failures"`
}

// Snapshot copies the registry. Individual counters are loaded
// atomically; the set is not a consistent cut under concurrent updates
// (totals may be mid-call), which is the usual monitoring contract.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Conns:           m.Conns.Load(),
		ConnErrors:      m.ConnErrors.Load(),
		BadHeaders:      m.BadHeaders.Load(),
		BadXIDs:         m.BadXIDs.Load(),
		StaleReplies:    m.StaleReplies.Load(),
		DispatchErrors:  m.DispatchErrors.Load(),
		Oneways:         m.Oneways.Load(),
		InFlight:        m.InFlight.Load(),
		QueueDepth:      m.QueueDepth.Load(),
		Retries:         m.Retries.Load(),
		Reconnects:      m.Reconnects.Load(),
		BreakerOpen:     m.BreakerOpen.Load(),
		BreakerRejects:  m.BreakerRejects.Load(),
		PanicsRecovered: m.PanicsRecovered.Load(),
		DroppedDupes:    m.DroppedDupes.Load(),
		IdleReaped:      m.IdleReaped.Load(),
		Oversized:       m.Oversized.Load(),

		BatchedCalls:       m.BatchedCalls.Load(),
		BatchFrames:        m.BatchFrames.Load(),
		BatchFlushSize:     m.BatchFlushSize.Load(),
		BatchFlushIdle:     m.BatchFlushIdle.Load(),
		BatchFlushDeadline: m.BatchFlushDeadline.Load(),
		BatchFlushClose:    m.BatchFlushClose.Load(),
		AdmissionRejects:   m.AdmissionRejects.Load(),
		SessionFailovers:   m.SessionFailovers.Load(),

		HedgedCalls:    m.HedgedCalls.Load(),
		HedgeWins:      m.HedgeWins.Load(),
		CancelsSent:    m.CancelsSent.Load(),
		GoAways:        m.GoAways.Load(),
		ExpiredRejects: m.ExpiredRejects.Load(),
		CanceledCalls:  m.CanceledCalls.Load(),
		DrainRejects:   m.DrainRejects.Load(),

		EncGrowChecks:   m.EncGrowChecks.Load(),
		EncGrowAllocs:   m.EncGrowAllocs.Load(),
		DecEnsureChecks: m.DecEnsureChecks.Load(),
		DecFailures:     m.DecFailures.Load(),
	}
	m.ops.Range(func(k, v any) bool {
		op := v.(*OpStats)
		lat := op.Latency.Snapshot()
		s.Ops = append(s.Ops, OpSnapshot{
			Op:       k.(string),
			Calls:    op.Calls.Load(),
			Errors:   op.Errors.Load(),
			ReqBytes: op.ReqBytes.Load(),
			RepBytes: op.RepBytes.Load(),
			Latency:  lat,
			MeanNs:   uint64(lat.Mean()),
			P50Ns:    uint64(lat.Quantile(0.50)),
			P90Ns:    uint64(lat.Quantile(0.90)),
			P99Ns:    uint64(lat.Quantile(0.99)),
			MaxNs:    lat.MaxNs,
		})
		return true
	})
	sort.Slice(s.Ops, func(i, j int) bool { return s.Ops[i].Op < s.Ops[j].Op })
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Sub returns the per-interval delta s - earlier: every monotonic
// counter is subtracted, gauges (InFlight, QueueDepth) report the
// level *change* over the interval, and per-op latency statistics
// (mean, quantiles) are recomputed from the diffed histograms so they
// describe only the interval — the debug surface and tests use this to
// report rates instead of process-lifetime totals. Operations present
// only in s appear with their full counts (they started inside the
// interval); MaxNs is max-since-start (see HistogramSnapshot.Sub).
// earlier must be a prior snapshot of the same registry.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	d := s
	d.Conns -= earlier.Conns
	d.ConnErrors -= earlier.ConnErrors
	d.BadHeaders -= earlier.BadHeaders
	d.BadXIDs -= earlier.BadXIDs
	d.StaleReplies -= earlier.StaleReplies
	d.DispatchErrors -= earlier.DispatchErrors
	d.Oneways -= earlier.Oneways
	d.InFlight -= earlier.InFlight
	d.QueueDepth -= earlier.QueueDepth
	d.Retries -= earlier.Retries
	d.Reconnects -= earlier.Reconnects
	d.BreakerOpen -= earlier.BreakerOpen
	d.BreakerRejects -= earlier.BreakerRejects
	d.PanicsRecovered -= earlier.PanicsRecovered
	d.DroppedDupes -= earlier.DroppedDupes
	d.IdleReaped -= earlier.IdleReaped
	d.Oversized -= earlier.Oversized
	d.BatchedCalls -= earlier.BatchedCalls
	d.BatchFrames -= earlier.BatchFrames
	d.BatchFlushSize -= earlier.BatchFlushSize
	d.BatchFlushIdle -= earlier.BatchFlushIdle
	d.BatchFlushDeadline -= earlier.BatchFlushDeadline
	d.BatchFlushClose -= earlier.BatchFlushClose
	d.AdmissionRejects -= earlier.AdmissionRejects
	d.SessionFailovers -= earlier.SessionFailovers
	d.HedgedCalls -= earlier.HedgedCalls
	d.HedgeWins -= earlier.HedgeWins
	d.CancelsSent -= earlier.CancelsSent
	d.GoAways -= earlier.GoAways
	d.ExpiredRejects -= earlier.ExpiredRejects
	d.CanceledCalls -= earlier.CanceledCalls
	d.DrainRejects -= earlier.DrainRejects
	d.EncGrowChecks -= earlier.EncGrowChecks
	d.EncGrowAllocs -= earlier.EncGrowAllocs
	d.DecEnsureChecks -= earlier.DecEnsureChecks
	d.DecFailures -= earlier.DecFailures

	prior := make(map[string]OpSnapshot, len(earlier.Ops))
	for _, op := range earlier.Ops {
		prior[op.Op] = op
	}
	d.Ops = make([]OpSnapshot, 0, len(s.Ops))
	for _, op := range s.Ops {
		if p, ok := prior[op.Op]; ok {
			op.Calls -= p.Calls
			op.Errors -= p.Errors
			op.ReqBytes -= p.ReqBytes
			op.RepBytes -= p.RepBytes
			op.Latency = op.Latency.Sub(p.Latency)
			op.MeanNs = uint64(op.Latency.Mean())
			op.P50Ns = uint64(op.Latency.Quantile(0.50))
			op.P90Ns = uint64(op.Latency.Quantile(0.90))
			op.P99Ns = uint64(op.Latency.Quantile(0.99))
			op.MaxNs = op.Latency.MaxNs
		}
		d.Ops = append(d.Ops, op)
	}
	return d
}

// WriteTo writes an expvar/Prometheus-style text exposition: one
// `name value` line per counter, per-op counters labeled
// `{op="name"}`. It implements io.WriterTo.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	pr := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	globals := []struct {
		name string
		v    uint64
	}{
		{"flick_conns", s.Conns},
		{"flick_conn_errors", s.ConnErrors},
		{"flick_bad_headers", s.BadHeaders},
		{"flick_bad_xids", s.BadXIDs},
		{"flick_stale_replies", s.StaleReplies},
		{"flick_dispatch_errors", s.DispatchErrors},
		{"flick_oneways", s.Oneways},
		{"flick_retries", s.Retries},
		{"flick_reconnects", s.Reconnects},
		{"flick_breaker_open", s.BreakerOpen},
		{"flick_breaker_rejects", s.BreakerRejects},
		{"flick_panics_recovered", s.PanicsRecovered},
		{"flick_dropped_dupes", s.DroppedDupes},
		{"flick_idle_reaped", s.IdleReaped},
		{"flick_oversized", s.Oversized},
		{"flick_batched_calls", s.BatchedCalls},
		{"flick_batch_frames", s.BatchFrames},
		{"flick_batch_flush_size", s.BatchFlushSize},
		{"flick_batch_flush_idle", s.BatchFlushIdle},
		{"flick_batch_flush_deadline", s.BatchFlushDeadline},
		{"flick_batch_flush_close", s.BatchFlushClose},
		{"flick_admission_rejects", s.AdmissionRejects},
		{"flick_session_failovers", s.SessionFailovers},
		{"flick_hedged_calls", s.HedgedCalls},
		{"flick_hedge_wins", s.HedgeWins},
		{"flick_cancels_sent", s.CancelsSent},
		{"flick_goaways", s.GoAways},
		{"flick_expired_rejects", s.ExpiredRejects},
		{"flick_canceled_calls", s.CanceledCalls},
		{"flick_drain_rejects", s.DrainRejects},
		{"flick_enc_grow_checks", s.EncGrowChecks},
		{"flick_enc_grow_allocs", s.EncGrowAllocs},
		{"flick_dec_ensure_checks", s.DecEnsureChecks},
		{"flick_dec_failures", s.DecFailures},
	}
	for _, g := range globals {
		if err := pr("%s %d\n", g.name, g.v); err != nil {
			return total, err
		}
	}
	// Gauges (signed: point-in-time levels, not monotonic counters).
	for _, g := range []struct {
		name string
		v    int64
	}{
		{"flick_in_flight", s.InFlight},
		{"flick_queue_depth", s.QueueDepth},
	} {
		if err := pr("%s %d\n", g.name, g.v); err != nil {
			return total, err
		}
	}
	for _, op := range s.Ops {
		rows := []struct {
			name string
			v    uint64
		}{
			{"calls", op.Calls},
			{"errors", op.Errors},
			{"req_bytes", op.ReqBytes},
			{"rep_bytes", op.RepBytes},
			{"latency_mean_ns", op.MeanNs},
			{"latency_p50_ns", op.P50Ns},
			{"latency_p90_ns", op.P90Ns},
			{"latency_p99_ns", op.P99Ns},
			{"latency_max_ns", op.MaxNs},
		}
		for _, r := range rows {
			if err := pr("flick_op_%s{op=%q} %d\n", r.name, op.Op, r.v); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// String renders the text exposition.
func (s Snapshot) String() string {
	var b writerToString
	s.WriteTo(&b)
	return string(b)
}

type writerToString []byte

func (w *writerToString) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
