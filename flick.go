// Package flick is a flexible, optimizing IDL compiler kit: a Go
// reproduction of Flick (Eide, Frei, Ford, Lepreau, Lindstrom — PLDI
// 1997).
//
// Flick compiles interface definitions written in CORBA IDL, the ONC RPC
// language, or a MIG subset through a series of intermediate
// representations — AOI (the network contract), MINT/CAST-or-Go/PRES (the
// programmer's contract) — into optimized marshal/unmarshal stubs for the
// XDR, CORBA CDR/IIOP, Mach 3, and Fluke message encodings.
//
// The generated Go stubs link against package flick/rt. Baseline code
// styles (rpcgen-like, PowerRPC-like) and interpretive marshalers
// (ILU-like, ORBeline-like) reproduce the comparison systems of the
// paper's evaluation.
package flick

import (
	"fmt"
	"strings"

	"flick/internal/aoi"
	"flick/internal/backend/cstub"
	"flick/internal/backend/gostub"
	"flick/internal/frontend/corbaidl"
	"flick/internal/frontend/mig"
	"flick/internal/frontend/oncrpc"
	"flick/internal/mir"
	"flick/internal/pgen"
	"flick/internal/presc"
	"flick/internal/verify"
	"flick/internal/wire"
)

// Options selects the front end, presentation, back end, and optimization
// set for one compilation.
type Options struct {
	// IDL names the source language: "corba", "oncrpc", "mig", or
	// "auto" (chosen by file extension: .x → oncrpc, .defs → mig,
	// anything else → corba).
	IDL string
	// Lang is the target language: "go" (runnable stubs) or "c" (the
	// paper's original target, emitted through CAST).
	Lang string
	// Format is the wire encoding: "xdr", "cdr", "cdr-le", "mach3",
	// "fluke".
	Format string
	// Style is the code style: "flick" (optimized), "rpcgen", or
	// "powerrpc" (naive baselines).
	Style string
	// Package names the generated Go package.
	Package string
	// FuncSuffix is appended to generated function names, allowing
	// several configurations to coexist in one package.
	FuncSuffix string
	// SkipDecls omits presented type declarations.
	SkipDecls bool
	// EmitRPC adds client stubs and a server dispatcher (Go only).
	EmitRPC bool
	// Surfaces selects the presentation surfaces emitted over the
	// shared marshal core ("sync", "async", "stream"), in order. Empty
	// means sync only. Go with EmitRPC only.
	Surfaces string
	// SurfacesOnly emits only the surface shells, for adding surfaces
	// to a package whose marshal core and dispatcher another
	// configuration already generated.
	SurfacesOnly bool
	// Side selects the client or server presentation (C only; the Go
	// back end emits both halves).
	Side string
	// Presentation forces a C mapping style ("corba", "rpcgen",
	// "fluke"); empty picks by IDL and format.
	Presentation string
	// DisableGroup/Chunk/Memcpy/Inline switch off individual
	// optimizations (for ablation studies).
	DisableGroup  bool
	DisableChunk  bool
	DisableMemcpy bool
	DisableInline bool
	// ZeroCopy emits the zero-copy call shapes for byte regions the MIR
	// alias pass proved alias-safe: marshal-side sends by reference
	// (vectored writes on capable transports), decode-side views borrow
	// the receive arena. Go stubs in the flick style only; requires the
	// memcpy optimization.
	ZeroCopy bool
	// Stats, when non-nil, accumulates the optimizer's per-stub counters
	// for this compilation (`flick -stats`). The C back end has no
	// per-stub boundary in its emitter, so its counters land in
	// Stats.Total only.
	Stats *gostub.Stats
	// Verify selects how much stage-boundary IR verification runs: the
	// zero value (verify.On) checks the PRES-C presentation (MINT message
	// shapes + PRES mapping trees + target decls) before the back end and
	// every post-optimize MIR program before emission; verify.Off skips
	// both (`flick -noverify`); verify.Strict adds the O(n²) chunk
	// overlap checks (`flick -verify=strict`).
	Verify verify.Mode
}

func (o Options) mirOptions() *mir.Options {
	m := mir.AllOptimizations()
	switch o.Style {
	case "", "flick":
	default:
		m = mir.NoOptimizations()
	}
	if o.DisableGroup {
		m.GroupEnsures = false
	}
	if o.DisableChunk {
		m.Chunk = false
	}
	if o.DisableMemcpy {
		m.Memcpy = false
	}
	if o.DisableInline {
		m.Inline = false
	}
	return &m
}

// Parse runs the selected front end and returns the AOI network contract.
func Parse(filename, src string, idl string) (*aoi.File, error) {
	switch resolveIDL(filename, idl) {
	case "corba":
		return corbaidl.Parse(filename, src)
	case "oncrpc":
		return oncrpc.Parse(filename, src)
	case "mig":
		return nil, fmt.Errorf("flick: the MIG front end produces PRES-C directly; use Compile")
	default:
		return nil, fmt.Errorf("flick: unknown IDL %q", idl)
	}
}

func resolveIDL(filename, idl string) string {
	if idl != "" && idl != "auto" {
		return idl
	}
	switch {
	case strings.HasSuffix(filename, ".x"):
		return "oncrpc"
	case strings.HasSuffix(filename, ".defs"):
		return "mig"
	default:
		return "corba"
	}
}

// Compile runs the full pipeline: front end → presentation generator →
// back end, returning generated source text.
func Compile(filename, src string, opt Options) (string, error) {
	if opt.Lang == "" {
		opt.Lang = "go"
	}
	if opt.Format == "" {
		opt.Format = "xdr"
	}
	if opt.Package == "" {
		opt.Package = "stubs"
	}
	format, ok := wire.ByName(opt.Format)
	if !ok {
		return "", fmt.Errorf("flick: unknown wire format %q", opt.Format)
	}

	idl := resolveIDL(filename, opt.IDL)
	var pf *presc.File
	if idl == "mig" {
		if opt.Lang == "c" {
			return "", fmt.Errorf("flick: the MIG front end currently presents Go stubs only (the original MIG mapping is C- and Mach-specific); use -lang go")
		}
		// MIG's conjoined front end + presentation generator.
		var err error
		pf, err = mig.Parse(filename, src, sideOf(opt.Side))
		if err != nil {
			return "", err
		}
	} else {
		af, err := Parse(filename, src, idl)
		if err != nil {
			return "", err
		}
		if opt.Lang == "c" {
			style := opt.Presentation
			if style == "" {
				style = cPresentationFor(idl, opt.Format)
			}
			pf, err = pgen.GenerateC(af, sideOf(opt.Side), style)
		} else {
			pf, err = pgen.GenerateGo(af, sideOf(opt.Side))
		}
		if err != nil {
			return "", err
		}
	}

	// Stage boundary: verify the presentation (MINT message shapes, PRES
	// mapping trees, target declarations) before handing it to a back
	// end, so a presentation-generator bug is reported against the IR
	// node that carries it rather than as corrupt generated code.
	if opt.Verify != verify.Off {
		var vc *verify.Counters
		if opt.Stats != nil {
			vc = &opt.Stats.Verify
		}
		if fs := verify.PRESC(pf, vc); len(fs) > 0 {
			return "", fs.AsError()
		}
	}

	if opt.ZeroCopy {
		if opt.Lang != "" && opt.Lang != "go" {
			return "", fmt.Errorf("flick: -zerocopy targets the Go runtime's alias paths; use -lang go")
		}
		if s := opt.Style; s != "" && s != "flick" {
			return "", fmt.Errorf("flick: -zerocopy requires the optimizing style (got %q)", s)
		}
		if opt.DisableMemcpy {
			return "", fmt.Errorf("flick: -zerocopy requires the memcpy optimization (disabled by -disable memcpy)")
		}
	}

	switch opt.Lang {
	case "go":
		var surfaces []gostub.Surface
		if opt.Surfaces != "" {
			var err error
			surfaces, err = gostub.ParseSurfaces(opt.Surfaces)
			if err != nil {
				return "", err
			}
		}
		return gostub.Generate(pf, gostub.Config{
			Package:      opt.Package,
			Format:       format,
			Style:        styleOf(opt.Style),
			Opts:         opt.mirOptions(),
			FuncSuffix:   opt.FuncSuffix,
			SkipDecls:    opt.SkipDecls,
			EmitRPC:      opt.EmitRPC,
			Surfaces:     surfaces,
			SurfacesOnly: opt.SurfacesOnly,
			Stats:        opt.Stats,
			Verify:       opt.Verify,
			ZeroCopy:     opt.ZeroCopy,
		})
	case "c":
		copts := *opt.mirOptions()
		ccfg := cstub.Config{Format: format, Opts: copts, Verify: opt.Verify}
		if opt.Stats != nil {
			ccfg.Opts.Stats = &opt.Stats.Total
			ccfg.VerifyCounters = &opt.Stats.Verify
		}
		return cstub.Generate(pf, ccfg)
	default:
		return "", fmt.Errorf("flick: unknown target language %q", opt.Lang)
	}
}

// cPresentationFor picks the C mapping rules for an IDL and format: ONC
// sources present rpcgen-style; CORBA sources present CORBA-style; the
// Fluke format uses the Fluke variant derived from the CORBA library.
func cPresentationFor(idl, format string) string {
	if idl == "oncrpc" {
		return "rpcgen"
	}
	if format == "fluke" {
		return "fluke"
	}
	return "corba"
}

func sideOf(s string) presc.Side {
	if s == "server" {
		return presc.Server
	}
	return presc.Client
}

func styleOf(s string) gostub.Style {
	switch s {
	case "rpcgen":
		return gostub.StyleRpcgen
	case "powerrpc":
		return gostub.StylePowerRPC
	default:
		return gostub.StyleFlick
	}
}
