module flick

go 1.22
