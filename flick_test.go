package flick_test

import (
	"strings"
	"testing"

	"flick"
)

const mailCorba = `
interface Mail {
	void send(in string msg);
};
`

const mailONC = `
program Mail {
	version V {
		void send(string) = 1;
	} = 1;
} = 0x20000001;
`

func TestParseAutoDetection(t *testing.T) {
	af, err := flick.Parse("mail.idl", mailCorba, "auto")
	if err != nil || af.IDL != "corba" {
		t.Errorf("idl auto = %v, %v", af, err)
	}
	af, err = flick.Parse("mail.x", mailONC, "auto")
	if err != nil || af.IDL != "oncrpc" {
		t.Errorf("x auto = %v, %v", af, err)
	}
	if _, err := flick.Parse("m.idl", mailCorba, "klingon"); err == nil {
		t.Error("unknown IDL accepted")
	}
}

func TestCompileMatrix(t *testing.T) {
	// Every (IDL, lang, format, style) combination we ship must compile
	// the Mail interface.
	for _, idl := range []struct{ name, file, src string }{
		{"corba", "m.idl", mailCorba},
		{"oncrpc", "m.x", mailONC},
	} {
		for _, lang := range []string{"go", "c"} {
			for _, format := range []string{"xdr", "cdr", "cdr-le", "mach3", "fluke"} {
				for _, style := range []string{"flick", "rpcgen", "powerrpc"} {
					opts := flick.Options{
						IDL: idl.name, Lang: lang, Format: format, Style: style,
						Package: "m", EmitRPC: lang == "go",
					}
					out, err := flick.Compile(idl.file, idl.src, opts)
					if err != nil {
						t.Errorf("%s/%s/%s/%s: %v", idl.name, lang, format, style, err)
						continue
					}
					if len(out) < 200 {
						t.Errorf("%s/%s/%s/%s: suspiciously small output (%d bytes)",
							idl.name, lang, format, style, len(out))
					}
				}
			}
		}
	}
}

func TestCompileMIG(t *testing.T) {
	out, err := flick.Compile("bench.defs", `
		subsystem bench 2400;
		routine send_ints(port : mach_port_t; v : array[] of int32_t);
	`, flick.Options{Format: "mach3", Package: "migstubs", EmitRPC: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"package migstubs",
		"MarshalBenchSendIntsRequest",
		"c.Prog = 2400",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("MIG output missing %q", frag)
		}
	}
}

func TestCompileAblationToggles(t *testing.T) {
	full, err := flick.Compile("m.idl", mailCorba, flick.Options{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	noMemcpy, err := flick.Compile("m.idl", mailCorba, flick.Options{
		Package: "p", DisableMemcpy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full == noMemcpy {
		t.Error("disabling memcpy changed nothing")
	}
	if !strings.Contains(full, "e.PutString(msg)") {
		t.Error("full output lacks bulk string copy")
	}
	if strings.Contains(noMemcpy, "e.PutString(msg)") {
		t.Error("no-memcpy output still bulk-copies")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := flick.Compile("m.idl", "interface {", flick.Options{}); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := flick.Compile("m.idl", mailCorba, flick.Options{Format: "morse"}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := flick.Compile("m.idl", mailCorba, flick.Options{Lang: "cobol"}); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestGeneratedGoCompilesUnderGofmtAssumptions(t *testing.T) {
	// Generated Go must at least be balanced and contain the DO NOT
	// EDIT marker; real compilation is covered by the committed
	// teststubs package.
	out, err := flick.Compile("m.idl", mailCorba, flick.Options{Package: "p", EmitRPC: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DO NOT EDIT") {
		t.Error("missing generated-code marker")
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in generated code")
	}
}

func TestCompileAttributesAndInheritance(t *testing.T) {
	// CORBA attributes expand into _get_/_set_ operations; inherited
	// operations keep their discriminator order — both must survive the
	// full pipeline into generated client/server code.
	out, err := flick.Compile("acct.idl", `
		interface Base {
			readonly attribute long version;
			void ping();
		};
		interface Account : Base {
			attribute string owner;
			void close();
		};
	`, flick.Options{Format: "cdr-le", Package: "acct", EmitRPC: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		// Inherited op plus own ops plus expanded attribute accessors.
		"func (c *AccountClient) Ping()",
		"func (c *AccountClient) Close()",
		"func (c *AccountClient) GetOwner() (ret string, err error)",
		"func (c *AccountClient) SetOwner(value string) (err error)",
		"GetVersion() (ret int32, err error)",
		// GIOP name demux must distinguish "_get_owner"/"_set_owner"
		// by their differing words.
		`case 0x5f676574: // "_get"`,
		`case 0x5f736574: // "_set"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestCompileInOutParams(t *testing.T) {
	out, err := flick.Compile("io.idl", `
		interface Counter {
			void bump(inout long value, out long previous);
		};
	`, flick.Options{Format: "xdr", Package: "ctr", EmitRPC: true})
	if err != nil {
		t.Fatal(err)
	}
	// inout appears in both the request and the reply.
	for _, frag := range []string{
		"func MarshalCounterBumpRequest(e *rt.Encoder, value int32)",
		"func UnmarshalCounterBumpReply(d *rt.Decoder) (value int32, previous int32, err error)",
		"Bump(value int32) (valueOut int32, previous int32, err error)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("inout output missing %q\n", frag)
		}
	}
}

func TestMIGRejectsCTarget(t *testing.T) {
	_, err := flick.Compile("s.defs", `
		subsystem s 1;
		routine f(port : mach_port_t; x : int);
	`, flick.Options{Lang: "c", Format: "mach3"})
	if err == nil || !strings.Contains(err.Error(), "MIG front end") {
		t.Errorf("err = %v", err)
	}
}
